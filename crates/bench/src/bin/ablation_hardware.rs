//! Hardware ablation (beyond the paper): the robustness problem is a
//! function of the storage cost asymmetry.
//!
//! The paper's plan-choice dilemma exists because a mispredicted index
//! plan pays ~3.5 ms per extra row while a scan's cost is flat — a
//! steep-vs-flat geometry with a crossover at fractions of a percent,
//! where estimates are noisiest.  On low-latency storage
//! ([`CostParams::nvme_ssd`]) the per-row gap shrinks by an order of
//! magnitude, the crossover moves to percent-level selectivities, and —
//! exactly as the paper's own §5.2.3 analysis predicts for high
//! crossovers — the confidence threshold stops mattering.
//!
//! Output: the Experiment-1 workload summary (avg, std) per threshold,
//! once under the 2005-disk parameters and once under the NVMe-like
//! parameters (times are not comparable across the two — only the spread
//! across thresholds within each is).

use rqo_bench::harness::{run_scenario, write_csv, RunConfig};
use rqo_bench::scenarios::{exp1_queries, tpch_catalog};
use rqo_storage::CostParams;

fn main() {
    let cfg = RunConfig::from_args();
    let catalog = tpch_catalog(&cfg);
    let queries = exp1_queries(&catalog);

    let mut rows = Vec::new();
    for (hw, params) in [
        ("disk-2005", CostParams::default()),
        ("nvme-ssd", CostParams::nvme_ssd()),
    ] {
        let result = run_scenario(&catalog, &params, &queries, &cfg);
        // Relative spread of per-threshold means: how much the knob moves
        // outcomes on this hardware.
        let robust_means: Vec<f64> = result
            .summary
            .iter()
            .filter(|(l, _, _)| l != "histogram")
            .map(|(_, mean, _)| *mean)
            .collect();
        let lo = robust_means.iter().fold(f64::MAX, |a, &b| a.min(b));
        let hi = robust_means.iter().fold(f64::MIN, |a, &b| a.max(b));
        println!(
            "# {hw}: threshold sweep moves the workload mean by {:.1}% \
             (min {lo:.4}s, max {hi:.4}s)",
            (hi - lo) / lo * 100.0
        );
        for (label, mean, std) in &result.summary {
            rows.push(format!("{hw},{label},{mean:.4},{std:.4}"));
        }
    }
    write_csv(
        &cfg,
        "ablation_hardware",
        "hardware,estimator,avg_time_s,std_dev_s",
        &rows,
    );
}
