//! Figures 1–3: the illustrative two-plan example of §2.1/§3.1.
//!
//! * Figure 1 — execution cost of two hypothetical plans as a function of
//!   selectivity, crossing at 26%.
//! * Figure 2 — the probability density of each plan's execution *cost*
//!   when selectivity is a `Beta(50.5, 150.5)` posterior (50 of 200
//!   sampled tuples matched), obtained by change of variable through each
//!   plan's cost function.
//! * Figure 3 — the corresponding cost CDFs, the 50%/80% threshold
//!   readouts the paper quotes (Plan 1: 30.2/33.5, Plan 2: 31.5/31.9),
//!   and the threshold at which the preferred plan flips (paper: ≈65%).

use rqo_bench::harness::{write_csv, RunConfig};
use rqo_core::{ConfidenceThreshold, Prior, SelectivityPosterior};

/// Figure 2/3's cost lines: calibrated so the crossover sits at 26% and
/// the posterior's bulk maps to the paper's cost ranges (Plan 1 ≈ 20–40,
/// Plan 2 ≈ 30–33).
const PLAN1: (f64, f64) = (-10.6, 161.0); // cost = -10.6 + 161 s (steep)
const PLAN2: (f64, f64) = (30.0, 5.0); // cost = 30 + 5 s (flat)

fn cost(plan: (f64, f64), s: f64) -> f64 {
    plan.0 + plan.1 * s
}

fn inverse(plan: (f64, f64), c: f64) -> f64 {
    (c - plan.0) / plan.1
}

fn main() {
    let cfg = RunConfig::from_args();
    let posterior = SelectivityPosterior::from_observation(50, 200, Prior::Jeffreys);

    // Figure 1: cost vs selectivity for two hypothetical plans (scaled to
    // the figure's 0–50 cost axis), crossover at 26%.
    let fig1_p1 = (2.0, 43.0);
    let fig1_p2 = (12.68, 2.0); // equal to p1 at s = 0.26
    let rows: Vec<String> = (0..=20)
        .map(|i| {
            let s = i as f64 / 20.0;
            format!("{:.2},{:.3},{:.3}", s, cost(fig1_p1, s), cost(fig1_p2, s))
        })
        .collect();
    write_csv(
        &cfg,
        "fig01_cost_vs_selectivity",
        "selectivity,plan1,plan2",
        &rows,
    );
    let crossover = (fig1_p2.0 - fig1_p1.0) / (fig1_p1.1 - fig1_p2.1);
    println!(
        "# Figure 1 crossover selectivity: {:.1}% (paper: 26%)\n",
        crossover * 100.0
    );

    // Figure 2: pdf of execution cost per plan via change of variable:
    // f*(c) = f(g⁻¹(c)) / g'.
    let rows: Vec<String> = (0..=125)
        .map(|i| {
            let c = 20.0 + i as f64 * 0.2; // cost axis 20..45
            let d1 = posterior.pdf(inverse(PLAN1, c)) / PLAN1.1;
            let d2 = posterior.pdf(inverse(PLAN2, c)) / PLAN2.1;
            format!("{c:.1},{d1:.5},{d2:.5}")
        })
        .collect();
    write_csv(
        &cfg,
        "fig02_cost_pdf",
        "cost,plan1_density,plan2_density",
        &rows,
    );

    // Figure 3: cost CDFs.
    let rows: Vec<String> = (0..=125)
        .map(|i| {
            let c = 20.0 + i as f64 * 0.2;
            let c1 = posterior.cdf(inverse(PLAN1, c));
            let c2 = posterior.cdf(inverse(PLAN2, c));
            format!("{c:.1},{c1:.5},{c2:.5}")
        })
        .collect();
    write_csv(&cfg, "fig03_cost_cdf", "cost,plan1_cdf,plan2_cdf", &rows);

    // Threshold readouts the paper quotes in §3.1.
    let mut readouts = Vec::new();
    for pct in [50.0, 80.0] {
        let t = ConfidenceThreshold::from_percent(pct);
        let s = posterior.at_threshold(t);
        readouts.push(format!("{pct},{:.2},{:.2}", cost(PLAN1, s), cost(PLAN2, s)));
    }
    write_csv(
        &cfg,
        "fig03_threshold_readouts",
        "threshold_pct,plan1_cost_estimate,plan2_cost_estimate",
        &readouts,
    );
    println!("# Paper §3.1 quotes: T=50% -> 30.2 / 31.5, T=80% -> 33.5 / 31.9");

    // The flip threshold: Plan 1 preferred below, Plan 2 above.
    let s_cross = (PLAN2.0 - PLAN1.0) / (PLAN1.1 - PLAN2.1);
    let flip = posterior.cdf(s_cross);
    println!(
        "# Preferred plan flips at T = {:.1}% (paper: ~65%)",
        flip * 100.0
    );
}
