//! Streaming-sketch statistics bench: `BENCH_sketch.json`.
//!
//! Three claims from the streaming-ingest subsystem, measured and
//! self-asserted so CI fails if any regresses:
//!
//! 1. **Accuracy on skew.** On Zipf-distributed streams the merged HLL
//!    sketch stays within 5% of the true distinct count, while the
//!    sample-based estimators (GEE, jackknife) — which only ever see a
//!    small uniform row sample — drift badly: skew starves the sample
//!    of rare values.  This is why ingest maintains sketches instead of
//!    re-sampling.
//! 2. **Incremental maintenance is cheap.** Folding a batch into the
//!    per-partition sketches (`TableSketches::observe`) must be ≥5×
//!    cheaper than the full-table rebuild (`seeded_from_table`) a
//!    non-incremental design would pay on every batch.  Engine-level
//!    wall times (`insert_rows` per batch, `refresh_statistics`) are
//!    reported alongside as context.
//! 3. **Warm plans survive unrelated ingest.** Inserting into one table
//!    must not evict cached plans for another: invalidation is scoped.

use std::fmt::Write as _;
use std::time::Instant;

use rqo_exec::{AggExpr, ExecOptions};
use rqo_expr::Expr;
use rqo_optimizer::Query;
use rqo_service::Engine;
use rqo_stats::distinct::{gee_estimate, jackknife_estimate};
use rqo_stats::sketch::{RowReservoir, TableSketches, DEFAULT_PRECISION};
use rqo_stats::DistinctSketch;
use rqo_storage::{
    Catalog, CostParams, DataType, PartitionSpec, PartitionedTableBuilder, Schema, TableBuilder,
    Value,
};

const PARTS: i64 = 4;
const SEED: u64 = 42;

struct Args {
    /// True distinct counts swept in the accuracy section.
    cardinalities: Vec<usize>,
    /// Uniform row-sample size handed to GEE/jackknife.
    sample_rows: usize,
    /// Base rows in the ingest table before streaming starts.
    base_rows: i64,
    /// Steady-state batches timed (after one seeding batch).
    batches: i64,
    batch_rows: i64,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            cardinalities: vec![1_000, 10_000, 100_000, 1_000_000],
            sample_rows: 2_048,
            base_rows: 200_000,
            batches: 10,
            batch_rows: 2_000,
            out: "BENCH_sketch.json".to_string(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--tiny" => {
                    args.cardinalities = vec![1_000, 10_000, 50_000];
                    args.sample_rows = 512;
                    args.base_rows = 20_000;
                    args.batches = 6;
                    args.batch_rows = 500;
                    i += 1;
                }
                flag => {
                    let value = argv
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("{flag} needs a value"));
                    match flag {
                        "--sample-rows" => args.sample_rows = value.parse().expect("--sample-rows"),
                        "--base-rows" => args.base_rows = value.parse().expect("--base-rows"),
                        "--batches" => args.batches = value.parse().expect("--batches"),
                        "--batch-rows" => args.batch_rows = value.parse().expect("--batch-rows"),
                        "--out" => args.out = value.clone(),
                        other => panic!("unknown flag {other:?}"),
                    }
                    i += 2;
                }
            }
        }
        args
    }
}

/// splitmix64 — the repo's standard deterministic scrambler.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Section 1: accuracy on skewed streams
// ---------------------------------------------------------------------------

struct AccuracyPoint {
    distinct: usize,
    stream_rows: u64,
    sketch_est: f64,
    gee_est: f64,
    jackknife_est: f64,
}

impl AccuracyPoint {
    fn rel(est: f64, truth: usize) -> f64 {
        (est - truth as f64).abs() / truth as f64
    }
}

/// Streams a Zipf(1)-shaped multiset with exactly `distinct` values:
/// the value of rank `r` appears `1 + distinct/(4r)` times.  Feeds the
/// sketch and a uniform reservoir in one pass; rank order doesn't bias
/// the reservoir (algorithm-R is order-oblivious).
fn accuracy_point(distinct: usize, sample_rows: usize) -> AccuracyPoint {
    let mut sketch = DistinctSketch::new();
    let mut reservoir = RowReservoir::new(sample_rows, SEED ^ distinct as u64);
    let mut stream_rows = 0u64;
    for rank in 1..=distinct as u64 {
        // Scramble the value so adjacent ranks don't hash adjacently.
        let value = Value::Int(mix(rank) as i64);
        let copies = 1 + distinct as u64 / (4 * rank);
        for _ in 0..copies {
            sketch.insert(&value);
            reservoir.insert(std::slice::from_ref(&value));
            stream_rows += 1;
        }
    }
    let sample: Vec<Value> = reservoir.rows().iter().map(|r| r[0].clone()).collect();
    AccuracyPoint {
        distinct,
        stream_rows,
        sketch_est: sketch.estimate(),
        gee_est: gee_estimate(&sample, stream_rows),
        jackknife_est: jackknife_estimate(&sample, stream_rows),
    }
}

// ---------------------------------------------------------------------------
// Sections 2 + 3: ingest maintenance cost and warm-plan survival
// ---------------------------------------------------------------------------

fn t_row(i: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Int(i * 3 % 17),
        Value::Float((i * 7 % 5_000) as f64),
    ]
}

/// Ingest fixture: partitioned fact table `t(x, k, f)` range-split on
/// `x` over the *full* streamed domain, plus dimension `u(k, w)` so an
/// unrelated warm plan exists to survive.
fn ingest_engine(args: &Args) -> Engine {
    let total = args.base_rows + (args.batches + 1) * args.batch_rows;
    let mut pb = PartitionedTableBuilder::new(
        "t",
        Schema::from_pairs(&[
            ("x", DataType::Int),
            ("k", DataType::Int),
            ("f", DataType::Float),
        ]),
        PartitionSpec::Range {
            column: "x".into(),
            bounds: (1..PARTS).map(|q| Value::Int(q * total / PARTS)).collect(),
        },
    );
    for i in 0..args.base_rows {
        pb.push_row(&t_row(i));
    }
    let (table, layout) = pb.finish();
    let mut cat = Catalog::new();
    cat.add_partitioned_table(table, layout).unwrap();
    let mut b = TableBuilder::new(
        "u",
        Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)]),
        17,
    );
    for i in 0..17i64 {
        b.push_row(&[Value::Int(i), Value::Int(i * 5 % 23)]);
    }
    cat.add_table(b.finish()).unwrap();
    cat.add_foreign_key("t", "k", "u", "k").unwrap();
    Engine::with_options(cat, CostParams::default(), 256, SEED)
}

struct Maintenance {
    seed_batch_ms: f64,
    insert_batch_avg_ms: f64,
    refresh_statistics_ms: f64,
    incremental_fold_ms: f64,
    full_rebuild_ms: f64,
    full_over_incremental: f64,
}

struct Survival {
    warm_hits: u64,
    post_insert_hits_delta: u64,
    post_insert_misses_delta: u64,
}

fn ingest_sections(args: &Args) -> (Maintenance, Survival) {
    let mut engine = ingest_engine(args);
    let opts = ExecOptions::with_threads(1);

    // Warm a plan over `u` (unrelated to the streamed table) and over
    // `t`, so survival and scoped eviction are both observable.
    let q_u = Query::over(&["u"]).aggregate(AggExpr::count_star("n"));
    let q_t = Query::over(&["t"])
        .filter("t", Expr::col("x").lt(Expr::lit(args.base_rows / PARTS)))
        .aggregate(AggExpr::count_star("n"));
    engine.run_opts(&q_u, &opts).expect("warm u");
    engine.run_opts(&q_t, &opts).expect("warm t");
    engine.run_opts(&q_u, &opts).expect("u hits");
    let warm = engine.cache_stats();

    // First batch seeds the sketches from the stored rows — a one-time
    // full scan, timed separately from steady state.
    let seed_lo = args.base_rows;
    let batch: Vec<Vec<Value>> = (seed_lo..seed_lo + args.batch_rows).map(t_row).collect();
    let t0 = Instant::now();
    engine.insert_rows("t", &batch).expect("seeding batch");
    let seed_batch_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Steady state: time `insert_rows` per batch end to end.
    let mut batch_ms = Vec::new();
    for b in 0..args.batches {
        let lo = seed_lo + (b + 1) * args.batch_rows;
        let batch: Vec<Vec<Value>> = (lo..lo + args.batch_rows).map(t_row).collect();
        let t0 = Instant::now();
        engine.insert_rows("t", &batch).expect("steady batch");
        batch_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let insert_batch_avg_ms = batch_ms.iter().sum::<f64>() / batch_ms.len() as f64;

    // Survival: the warm `u` plan must still hit after all that ingest
    // into `t`; the `t` plan was evicted (scoped invalidation).
    engine.run_opts(&q_u, &opts).expect("u after ingest");
    engine.run_opts(&q_t, &opts).expect("t after ingest");
    let after = engine.cache_stats();
    let survival = Survival {
        warm_hits: warm.hits,
        post_insert_hits_delta: after.hits - warm.hits,
        post_insert_misses_delta: after.misses - warm.misses,
    };

    // The asserted ratio, at the sketch layer: folding one batch into
    // the live sketches vs the full-table rebuild a non-incremental
    // design would pay per batch.
    let live = engine.sketches_for("t").expect("ingest seeded sketches");
    let next_lo = seed_lo + (args.batches + 1) * args.batch_rows;
    let batch: Vec<Vec<Value>> = (next_lo..next_lo + args.batch_rows).map(t_row).collect();
    let mut folded = TableSketches::clone(&live);
    let t0 = Instant::now();
    for row in &batch {
        // All late arrivals route past the last bound: one partition,
        // like the real tail of an append-mostly stream.
        folded.observe(PARTS as usize - 1, row);
    }
    let incremental_fold_ms = t0.elapsed().as_secs_f64() * 1e3;

    let catalog = engine.catalog();
    let t = catalog.table("t").expect("t exists");
    let t0 = Instant::now();
    let rebuilt = TableSketches::seeded_from_table(
        t,
        catalog.partitioning("t").map(std::convert::AsRef::as_ref),
        DEFAULT_PRECISION,
        256,
        SEED,
    );
    let full_rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(rebuilt.rows(), t.num_rows() as u64, "rebuild saw every row");

    // Engine-level full refresh, for context (sampling-based synopses
    // are cheap by design; the sketch scan is the expensive part).
    let t0 = Instant::now();
    engine.refresh_statistics(SEED + 1);
    let refresh_statistics_ms = t0.elapsed().as_secs_f64() * 1e3;

    let maintenance = Maintenance {
        seed_batch_ms,
        insert_batch_avg_ms,
        refresh_statistics_ms,
        incremental_fold_ms,
        full_rebuild_ms,
        full_over_incremental: full_rebuild_ms / incremental_fold_ms,
    };
    (maintenance, survival)
}

fn main() {
    let args = Args::parse();

    let accuracy: Vec<AccuracyPoint> = args
        .cardinalities
        .iter()
        .map(|&d| accuracy_point(d, args.sample_rows))
        .collect();
    for p in &accuracy {
        let rel = AccuracyPoint::rel(p.sketch_est, p.distinct);
        assert!(
            rel <= 0.05,
            "sketch error {:.2}% > 5% at {} distinct",
            rel * 100.0,
            p.distinct
        );
    }

    let (maintenance, survival) = ingest_sections(&args);
    assert!(
        maintenance.full_over_incremental >= 5.0,
        "incremental sketch maintenance must be ≥5× cheaper than a full \
         rebuild per batch: fold {:.3} ms vs rebuild {:.3} ms ({:.1}×)",
        maintenance.incremental_fold_ms,
        maintenance.full_rebuild_ms,
        maintenance.full_over_incremental,
    );
    assert_eq!(
        (
            survival.post_insert_hits_delta,
            survival.post_insert_misses_delta
        ),
        (1, 1),
        "warm plan over the untouched table must hit after ingest; the \
         streamed table's plan must re-plan",
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"bench\": \"sketch\",").unwrap();
    writeln!(json, "  \"precision\": {},", DEFAULT_PRECISION).unwrap();
    writeln!(json, "  \"sample_rows\": {},", args.sample_rows).unwrap();
    writeln!(json, "  \"accuracy\": [").unwrap();
    for (i, p) in accuracy.iter().enumerate() {
        let comma = if i + 1 < accuracy.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"distinct\": {}, \"stream_rows\": {}, \
             \"sketch_est\": {:.1}, \"sketch_rel_err\": {:.4}, \
             \"gee_est\": {:.1}, \"gee_rel_err\": {:.4}, \
             \"jackknife_est\": {:.1}, \"jackknife_rel_err\": {:.4}}}{comma}",
            p.distinct,
            p.stream_rows,
            p.sketch_est,
            AccuracyPoint::rel(p.sketch_est, p.distinct),
            p.gee_est,
            AccuracyPoint::rel(p.gee_est, p.distinct),
            p.jackknife_est,
            AccuracyPoint::rel(p.jackknife_est, p.distinct),
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"maintenance\": {{").unwrap();
    writeln!(json, "    \"base_rows\": {},", args.base_rows).unwrap();
    writeln!(json, "    \"batches\": {},", args.batches).unwrap();
    writeln!(json, "    \"batch_rows\": {},", args.batch_rows).unwrap();
    writeln!(
        json,
        "    \"seed_batch_ms\": {:.3},",
        maintenance.seed_batch_ms
    )
    .unwrap();
    writeln!(
        json,
        "    \"insert_batch_avg_ms\": {:.3},",
        maintenance.insert_batch_avg_ms
    )
    .unwrap();
    writeln!(
        json,
        "    \"refresh_statistics_ms\": {:.3},",
        maintenance.refresh_statistics_ms
    )
    .unwrap();
    writeln!(
        json,
        "    \"incremental_fold_ms\": {:.4},",
        maintenance.incremental_fold_ms
    )
    .unwrap();
    writeln!(
        json,
        "    \"full_rebuild_ms\": {:.3},",
        maintenance.full_rebuild_ms
    )
    .unwrap();
    writeln!(
        json,
        "    \"full_over_incremental\": {:.1},",
        maintenance.full_over_incremental
    )
    .unwrap();
    writeln!(json, "    \"asserted_min_ratio\": 5.0").unwrap();
    writeln!(json, "  }},").unwrap();
    writeln!(json, "  \"plan_survival\": {{").unwrap();
    writeln!(json, "    \"warm_hits\": {},", survival.warm_hits).unwrap();
    writeln!(
        json,
        "    \"post_insert_hits_delta\": {},",
        survival.post_insert_hits_delta
    )
    .unwrap();
    writeln!(
        json,
        "    \"post_insert_misses_delta\": {},",
        survival.post_insert_misses_delta
    )
    .unwrap();
    writeln!(json, "    \"unrelated_warm_plan_survived\": true").unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&args.out, &json).expect("write bench output");
    println!("{json}");
    println!("wrote {}", args.out);
}
