//! The paper's §5 analytical model.
//!
//! A single-table query runs against `N` rows; each candidate plan has
//! linear cost `fᵢ + vᵢ·x` in the number of qualifying rows `x = p·N`.
//! Selectivity is estimated from an `n`-tuple sample at confidence
//! threshold `T`: when `k` tuples match, the estimate is the
//! `Beta(k+½, n−k+½)` quantile at `T`.  Because `k ~ Binomial(n, p)`, the
//! execution time at true selectivity `p` is a discrete mixture over `k`,
//! which this module evaluates exactly (no simulation noise) — the same
//! computation behind the paper's Figures 5–8.

use rqo_core::{ConfidenceThreshold, Prior, SelectivityPosterior};
use rqo_math::{Binomial, WeightedStats};

/// A plan with cost linear in the number of qualifying rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearPlan {
    /// Fixed cost in seconds (`fᵢ`).
    pub fixed_s: f64,
    /// Incremental cost per qualifying row in seconds (`vᵢ`).
    pub per_row_s: f64,
    /// Display name.
    pub name: &'static str,
}

impl LinearPlan {
    /// Cost in seconds at selectivity `p` over `n_rows` rows.
    pub fn cost(&self, p: f64, n_rows: f64) -> f64 {
        self.fixed_s + self.per_row_s * p * n_rows
    }
}

/// The analytical model: a table size and a set of candidate plans.
#[derive(Debug, Clone)]
pub struct AnalyticModel {
    /// Table cardinality (`N`).
    pub n_rows: f64,
    /// Candidate plans.
    pub plans: Vec<LinearPlan>,
}

impl AnalyticModel {
    /// The paper's §5.1 instantiation: `N = 6,000,000`,
    /// `P₁ = (f=35, v=3.5×10⁻⁶)` (sequential scan),
    /// `P₂ = (f=5, v=3.5×10⁻³)` (index intersection); crossover at
    /// `p_c ≈ 0.14%`.
    pub fn paper_default() -> Self {
        Self {
            n_rows: 6_000_000.0,
            plans: vec![
                LinearPlan {
                    fixed_s: 35.0,
                    per_row_s: 3.5e-6,
                    name: "P1-seqscan",
                },
                LinearPlan {
                    fixed_s: 5.0,
                    per_row_s: 3.5e-3,
                    name: "P2-ixsect",
                },
            ],
        }
    }

    /// The §5.2.3 perturbation: crossover moved to `p'_c ≈ 5.2%` by
    /// flattening the risky plan's slope.
    pub fn high_crossover() -> Self {
        // p_c = (f1 - f2) / ((v2 - v1) N) = 30 / ((v2 - 3.5e-6)·6e6) = 5.2%
        // ⇒ v2 ≈ 9.96e-5.
        Self {
            n_rows: 6_000_000.0,
            plans: vec![
                LinearPlan {
                    fixed_s: 35.0,
                    per_row_s: 3.5e-6,
                    name: "P1-seqscan",
                },
                LinearPlan {
                    fixed_s: 5.0,
                    per_row_s: 9.96e-5,
                    name: "P2-ixsect",
                },
            ],
        }
    }

    /// The selectivity where two plans' costs cross (for two-plan models).
    ///
    /// # Panics
    ///
    /// Panics unless the model has exactly two plans with distinct slopes.
    pub fn crossover(&self) -> f64 {
        assert_eq!(self.plans.len(), 2, "crossover is defined for two plans");
        let (a, b) = (&self.plans[0], &self.plans[1]);
        assert!(a.per_row_s != b.per_row_s, "parallel cost lines");
        (a.fixed_s - b.fixed_s) / ((b.per_row_s - a.per_row_s) * self.n_rows)
    }

    /// The index of the cheapest plan at an (estimated) selectivity.
    pub fn choose(&self, estimated_p: f64) -> usize {
        let mut best = 0;
        for (i, plan) in self.plans.iter().enumerate() {
            if plan.cost(estimated_p, self.n_rows) < self.plans[best].cost(estimated_p, self.n_rows)
            {
                best = i;
            }
        }
        best
    }

    /// The selectivity estimate produced when `k` of `n` sample tuples
    /// match, at threshold `t` under `prior`.
    pub fn estimate(&self, k: u64, n: u64, t: ConfidenceThreshold, prior: Prior) -> f64 {
        SelectivityPosterior::from_observation(k as usize, n as usize, prior).at_threshold(t)
    }

    /// Exact mean and standard deviation of execution time at true
    /// selectivity `p`, over the binomial randomness of an `n`-tuple
    /// sample interpreted at threshold `t` (Figures 5, 7, 8 plot the
    /// mean).
    pub fn execution_stats(
        &self,
        p: f64,
        sample_size: u64,
        t: ConfidenceThreshold,
        prior: Prior,
    ) -> WeightedStats {
        let binom = Binomial::new(sample_size, p);
        let mut stats = WeightedStats::new();
        for (k, w) in binom.support_iter(1e-12) {
            let est = self.estimate(k, sample_size, t, prior);
            let plan = self.choose(est);
            stats.push(self.plans[plan].cost(p, self.n_rows), w);
        }
        stats
    }

    /// The index of the plan with least *expected* cost under a
    /// selectivity posterior — the policy of the least-expected-cost
    /// literature the paper contrasts with (§4; Chu, Halpern & Gehrke).
    ///
    /// For the linear costs of this model, `E[fᵢ + vᵢ·s·N] =
    /// fᵢ + vᵢ·E[s]·N`, so LEC coincides with pricing at the posterior
    /// mean; it has no knob for trading variance, which is the paper's
    /// point of departure.
    pub fn choose_least_expected_cost(&self, posterior: &SelectivityPosterior) -> usize {
        let mean = posterior.mean();
        self.choose(mean)
    }

    /// Exact mean and standard deviation of execution time at true
    /// selectivity `p` under the least-expected-cost policy (ablation
    /// against [`AnalyticModel::execution_stats`]).
    pub fn execution_stats_lec(&self, p: f64, sample_size: u64, prior: Prior) -> WeightedStats {
        let binom = Binomial::new(sample_size, p);
        let mut stats = WeightedStats::new();
        for (k, w) in binom.support_iter(1e-12) {
            let posterior =
                SelectivityPosterior::from_observation(k as usize, sample_size as usize, prior);
            let plan = self.choose_least_expected_cost(&posterior);
            stats.push(self.plans[plan].cost(p, self.n_rows), w);
        }
        stats
    }

    /// Probability that each plan is chosen at true selectivity `p`
    /// (diagnostic used in tests and the §6.2.4 "self-adjusting" check).
    pub fn plan_probabilities(
        &self,
        p: f64,
        sample_size: u64,
        t: ConfidenceThreshold,
        prior: Prior,
    ) -> Vec<f64> {
        let binom = Binomial::new(sample_size, p);
        let mut probs = vec![0.0; self.plans.len()];
        for (k, w) in binom.support_iter(1e-12) {
            let est = self.estimate(k, sample_size, t, prior);
            probs[self.choose(est)] += w;
        }
        probs
    }

    /// Mean and standard deviation of execution time across a *workload*
    /// of queries whose true selectivities are the given grid, each
    /// equally likely (the aggregation behind Figure 6's tradeoff points).
    pub fn workload_stats(
        &self,
        selectivities: &[f64],
        sample_size: u64,
        t: ConfidenceThreshold,
        prior: Prior,
    ) -> WeightedStats {
        let mut total = WeightedStats::new();
        let w = 1.0 / selectivities.len() as f64;
        for &p in selectivities {
            let binom = Binomial::new(sample_size, p);
            for (k, pk) in binom.support_iter(1e-12) {
                let est = self.estimate(k, sample_size, t, prior);
                let plan = self.choose(est);
                total.push(self.plans[plan].cost(p, self.n_rows), w * pk);
            }
        }
        total
    }
}

/// The paper's Figure 5/6 selectivity grid: 0% to 1% in 0.05% steps.
pub fn paper_selectivity_grid() -> Vec<f64> {
    (0..=20).map(|i| i as f64 * 0.0005).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> ConfidenceThreshold {
        ConfidenceThreshold::new(x)
    }

    #[test]
    fn paper_crossover_value() {
        let m = AnalyticModel::paper_default();
        let c = m.crossover();
        assert!((c - 0.00143).abs() < 0.0001, "crossover {c}");
        let hc = AnalyticModel::high_crossover();
        assert!((hc.crossover() - 0.052).abs() < 0.002, "{}", hc.crossover());
    }

    #[test]
    fn plan_choice_around_crossover() {
        let m = AnalyticModel::paper_default();
        let c = m.crossover();
        assert_eq!(m.choose(c * 0.5), 1, "below crossover: risky plan");
        assert_eq!(m.choose(c * 2.0), 0, "above crossover: stable plan");
    }

    #[test]
    fn t95_never_gambles() {
        // §5.2.1: at T = 95% with n = 1000, even k = 0 gives an estimate
        // above the crossover, so the risky plan is never chosen.
        let m = AnalyticModel::paper_default();
        let probs = m.plan_probabilities(0.0005, 1000, t(0.95), Prior::Jeffreys);
        assert!(probs[1] < 1e-9, "risky plan probability {}", probs[1]);
        // Sanity: at T = 50% the risky plan IS chosen for tiny p.
        let probs50 = m.plan_probabilities(0.0001, 1000, t(0.5), Prior::Jeffreys);
        assert!(probs50[1] > 0.9, "risky plan probability {}", probs50[1]);
    }

    #[test]
    fn small_sample_self_adjusts() {
        // §6.2.4: a 50-tuple sample at T = 50% can never justify the risky
        // plan for the paper's low crossover.
        let m = AnalyticModel::paper_default();
        let est_k0 = m.estimate(0, 50, t(0.5), Prior::Jeffreys);
        assert!(
            est_k0 > m.crossover(),
            "k=0 estimate {est_k0} should exceed crossover {}",
            m.crossover()
        );
        let probs = m.plan_probabilities(0.001, 50, t(0.5), Prior::Jeffreys);
        assert!(probs[1] < 1e-9);
    }

    #[test]
    fn mean_time_bounded_by_plan_envelope() {
        let m = AnalyticModel::paper_default();
        for &p in &[0.0005, 0.0014, 0.005] {
            let stats = m.execution_stats(p, 1000, t(0.8), Prior::Jeffreys);
            let best = m.plans[m.choose(p)].cost(p, m.n_rows);
            let worst = m
                .plans
                .iter()
                .map(|pl| pl.cost(p, m.n_rows))
                .fold(f64::MIN, f64::max);
            assert!(stats.mean() >= best - 1e-9, "p={p}");
            assert!(stats.mean() <= worst + 1e-9, "p={p}");
        }
    }

    #[test]
    fn variance_decreases_with_threshold() {
        // Figure 6's monotone frontier: higher T ⇒ lower workload std dev.
        let m = AnalyticModel::paper_default();
        let grid = paper_selectivity_grid();
        let mut prev_std = f64::INFINITY;
        for pct in [0.05, 0.2, 0.5, 0.8, 0.95] {
            let s = m.workload_stats(&grid, 1000, t(pct), Prior::Jeffreys);
            assert!(
                s.std_dev() <= prev_std + 1e-9,
                "std dev not monotone at T={pct}: {} > {prev_std}",
                s.std_dev()
            );
            prev_std = s.std_dev();
        }
    }

    #[test]
    fn moderate_thresholds_best_mean() {
        // Figure 6's second observation: moderate thresholds beat the
        // extremes on mean execution time.
        let m = AnalyticModel::paper_default();
        let grid = paper_selectivity_grid();
        let mean = |pct: f64| {
            m.workload_stats(&grid, 1000, t(pct), Prior::Jeffreys)
                .mean()
        };
        let m05 = mean(0.05);
        let m50 = mean(0.5);
        let m80 = mean(0.8);
        let m95 = mean(0.95);
        assert!(m80 < m05, "T=80 ({m80}) should beat T=5 ({m05})");
        assert!(m80 < m95, "T=80 ({m80}) should beat T=95 ({m95})");
        assert!(
            m80 <= m50 + 0.5,
            "T=80 ({m80}) roughly at least as good as T=50 ({m50})"
        );
    }

    #[test]
    fn larger_samples_reduce_mean_time_below_crossover() {
        // Figure 7: at T = 50%, larger samples give lower expected time in
        // the low-selectivity region (small samples cannot justify the
        // cheap risky plan there), and the gain flattens past ~500 tuples
        // — the knee the paper uses to pick its 500-tuple default.
        let m = AnalyticModel::paper_default();
        let p = 0.0005; // below the 0.14% crossover
        let mean = |n: u64| m.execution_stats(p, n, t(0.5), Prior::Jeffreys).mean();
        let m100 = mean(100);
        let m500 = mean(500);
        let m6000 = mean(6000);
        assert!(m100 > m500, "{m100} vs {m500}");
        assert!(m500 >= m6000 - 1e-9, "{m500} vs {m6000}");
        // Knee: the 100→500 gain dwarfs the 500→6000 gain.
        assert!((m100 - m500) > 3.0 * (m500 - m6000), "knee missing");
        // A 100-tuple sample at T=50% cannot justify the risky plan even
        // when zero sample tuples match (the same §6.2.4 self-adjustment
        // that makes the 50-tuple point in Figure 12 an outlier).
        assert!(m.estimate(0, 100, t(0.5), Prior::Jeffreys) > m.crossover());
    }

    #[test]
    fn lec_matches_posterior_mean_for_linear_costs() {
        // Linear costs make LEC == plan-at-posterior-mean; and unlike the
        // percentile rule, LEC has no way to reach the variance the
        // conservative threshold achieves.
        let m = AnalyticModel::paper_default();
        let grid = paper_selectivity_grid();
        let mut lec = WeightedStats::new();
        let mut t95 = WeightedStats::new();
        let w = 1.0 / grid.len() as f64;
        for &p in &grid {
            let a = m.execution_stats_lec(p, 1000, Prior::Jeffreys);
            let b = m.execution_stats(p, 1000, t(0.95), Prior::Jeffreys);
            lec.push(a.mean(), w);
            t95.push(b.mean(), w);
        }
        // LEC's per-selectivity means vary (it gambles); T=95's do not.
        assert!(
            lec.std_dev() > 5.0 * t95.std_dev(),
            "{} vs {}",
            lec.std_dev(),
            t95.std_dev()
        );
    }

    #[test]
    fn high_crossover_insensitive_to_threshold() {
        // Figure 8: with the crossover at 5.2%, thresholds barely matter.
        let m = AnalyticModel::high_crossover();
        let grid: Vec<f64> = (0..=20).map(|i| i as f64 * 0.01).collect(); // 0..20%
        let means: Vec<f64> = [0.05, 0.5, 0.95]
            .iter()
            .map(|&pct| {
                m.workload_stats(&grid, 1000, t(pct), Prior::Jeffreys)
                    .mean()
            })
            .collect();
        let spread = means.iter().fold(f64::MIN, |a, &b| a.max(b))
            - means.iter().fold(f64::MAX, |a, &b| a.min(b));
        let base = means[1];
        assert!(
            spread / base < 0.05,
            "threshold spread {spread} too large relative to {base}"
        );
    }
}
