//! Sweep runner and reporting utilities shared by all `fig*` binaries.

use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::sync::Arc;

use rqo_core::{
    CardinalityEstimator, ConfidenceThreshold, EstimatorConfig, HistogramEstimator, RobustEstimator,
};
use rqo_math::RunningStats;
use rqo_optimizer::{detect_sorted_columns, Optimizer, Query};
use rqo_stats::SynopsisRepository;
use rqo_storage::{Catalog, CostParams};

/// Shared experiment configuration, parsed from command-line flags.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// TPC-H-like scale factor (1.0 = the paper's 6M-row `lineitem`).
    pub scale_factor: f64,
    /// Fact-table rows for the star schema (paper: 10M).
    pub fact_rows: usize,
    /// Sample/synopsis size in tuples (paper default: 500).
    pub sample_size: usize,
    /// Independent sample draws averaged per data point (paper: 12–20).
    pub repeats: usize,
    /// Confidence thresholds to sweep (paper: 5/20/50/80/95%).
    pub thresholds: Vec<f64>,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: String,
    /// Executor worker threads (1 = serial).  Parallelism changes
    /// wall-clock time only; simulated costs are thread-count invariant.
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            scale_factor: 0.05,
            fact_rows: 1_000_000,
            sample_size: 500,
            repeats: 12,
            thresholds: vec![0.05, 0.20, 0.50, 0.80, 0.95],
            seed: 20050614, // the paper's conference date
            out_dir: "results".to_string(),
            threads: 1,
        }
    }
}

impl RunConfig {
    /// Parses `--scale F --fact-rows N --sample-size N --repeats N
    /// --seed N --out DIR --threads N --quick` from `std::env::args`.
    /// `--quick` shrinks scale and repeats for smoke runs.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args)
    }

    /// Parses a flag list (separated out for testability).
    pub fn parse(args: &[String]) -> Self {
        let mut cfg = Self::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if flag == "--quick" {
                cfg.scale_factor = 0.01;
                cfg.fact_rows = 60_000;
                cfg.repeats = 3;
                i += 1;
                continue;
            }
            const KNOWN: [&str; 7] = [
                "--scale",
                "--fact-rows",
                "--sample-size",
                "--repeats",
                "--seed",
                "--out",
                "--threads",
            ];
            assert!(
                KNOWN.contains(&flag),
                "unknown flag {flag:?} (expected one of {KNOWN:?} or --quick)"
            );
            let value = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {flag}"));
            match flag {
                "--scale" => cfg.scale_factor = value.parse().expect("--scale"),
                "--fact-rows" => cfg.fact_rows = value.parse().expect("--fact-rows"),
                "--sample-size" => cfg.sample_size = value.parse().expect("--sample-size"),
                "--repeats" => cfg.repeats = value.parse().expect("--repeats"),
                "--seed" => cfg.seed = value.parse().expect("--seed"),
                "--out" => cfg.out_dir = value.to_string(),
                "--threads" => cfg.threads = value.parse().expect("--threads"),
                _ => unreachable!("validated above"),
            }
            i += 2;
        }
        cfg
    }
}

/// One plotted point: an estimator's behaviour at one true selectivity.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Estimator label (`T=80%`, `histogram`).
    pub estimator: String,
    /// True (measured) selectivity of the query instance.
    pub x: f64,
    /// Mean simulated execution time in seconds, across sample repeats.
    pub mean_s: f64,
    /// Standard deviation across sample repeats.
    pub std_s: f64,
    /// The most frequently chosen plan shape at this point.
    pub dominant_shape: String,
}

/// A full scenario result: per-point rows plus the per-estimator summary
/// across the whole workload (the `(avg, std)` scatter of Figures 9b, 10b,
/// 11b, 12).
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Per-selectivity series.
    pub points: Vec<SweepRow>,
    /// `(estimator, workload mean seconds, workload std-dev seconds)`.
    pub summary: Vec<(String, f64, f64)>,
}

/// Runs one experimental scenario: for every query instance and every
/// estimator configuration, optimize and execute, averaging execution
/// time over `repeats` independent statistic samples.
///
/// Plan *execution* is memoized on `(query index, plan tree)`: the
/// simulated executor is deterministic, so re-running an identical plan
/// is pure waste.  This is what makes 5-threshold × 20-repeat sweeps over
/// 16 query instances tractable.
pub fn run_scenario(
    catalog: &Arc<Catalog>,
    params: &CostParams,
    queries: &[(f64, Query)],
    cfg: &RunConfig,
) -> ScenarioResult {
    let sorted_columns = detect_sorted_columns(catalog);
    let exec_opts = rqo_exec::ExecOptions::with_threads(cfg.threads);
    let mut exec_cache: HashMap<(usize, String), f64> = HashMap::new();
    let mut run_plan = |qi: usize, plan: &rqo_exec::PhysicalPlan| -> f64 {
        // Memo key = (query, rendered plan).  `explain()` omits index-seek
        // residuals, but those are fully determined by the query (keyed by
        // `qi`) plus the rendered range columns, so the key is collision-
        // free for plans of the same query.
        let key = (qi, plan.explain());
        if let Some(&s) = exec_cache.get(&key) {
            return s;
        }
        let (_, cost) = rqo_exec::execute_with(plan, catalog, params, &exec_opts);
        let s = cost.seconds(params);
        exec_cache.insert(key, s);
        s
    };

    // label -> per-point time stats and shape votes.
    let mut point_stats: HashMap<(String, usize), (RunningStats, Vec<String>)> = HashMap::new();
    let mut pooled: HashMap<String, RunningStats> = HashMap::new();
    let mut labels: Vec<String> = Vec::new();

    // Robust estimators: one synopsis repository per repeat, shared by all
    // thresholds (as in the paper: one precomputed sample, many queries).
    for r in 0..cfg.repeats {
        let repo = Arc::new(SynopsisRepository::build_all(
            catalog,
            cfg.sample_size,
            cfg.seed.wrapping_add(r as u64 * 7919),
        ));
        for &t in &cfg.thresholds {
            let label = format!("T={}%", (t * 100.0).round());
            if !labels.contains(&label) {
                labels.push(label.clone());
            }
            let est = RobustEstimator::new(
                Arc::clone(&repo),
                EstimatorConfig::with_threshold(ConfidenceThreshold::new(t)),
            );
            let opt = Optimizer::with_metadata(
                Arc::clone(catalog),
                *params,
                Arc::new(est),
                sorted_columns.clone(),
            );
            for (qi, (_, query)) in queries.iter().enumerate() {
                let planned = opt.optimize(query);
                let secs = run_plan(qi, &planned.plan);
                let entry = point_stats
                    .entry((label.clone(), qi))
                    .or_insert_with(|| (RunningStats::new(), Vec::new()));
                entry.0.push(secs);
                entry.1.push(planned.shape());
                pooled.entry(label.clone()).or_default().push(secs);
            }
        }
    }

    // Histogram baseline: deterministic, one pass.
    {
        let label = "histogram".to_string();
        labels.push(label.clone());
        let est: Arc<dyn CardinalityEstimator> =
            Arc::new(HistogramEstimator::build_default(catalog));
        let opt =
            Optimizer::with_metadata(Arc::clone(catalog), *params, est, sorted_columns.clone());
        for (qi, (_, query)) in queries.iter().enumerate() {
            let planned = opt.optimize(query);
            let secs = run_plan(qi, &planned.plan);
            let entry = point_stats
                .entry((label.clone(), qi))
                .or_insert_with(|| (RunningStats::new(), Vec::new()));
            entry.0.push(secs);
            entry.1.push(planned.shape());
            // Weight the deterministic baseline equally in the pooled
            // summary by replicating it per repeat.
            for _ in 0..cfg.repeats {
                pooled.entry(label.clone()).or_default().push(secs);
            }
        }
    }

    let mut points = Vec::new();
    for label in &labels {
        for (qi, (x, _)) in queries.iter().enumerate() {
            let (stats, shapes) = &point_stats[&(label.clone(), qi)];
            points.push(SweepRow {
                estimator: label.clone(),
                x: *x,
                mean_s: stats.mean(),
                std_s: stats.std_dev(),
                dominant_shape: dominant(shapes),
            });
        }
    }
    let summary = labels
        .iter()
        .map(|l| {
            let s = &pooled[l];
            (l.clone(), s.mean(), s.std_dev())
        })
        .collect();
    ScenarioResult { points, summary }
}

fn dominant(shapes: &[String]) -> String {
    let mut counts: HashMap<&String, usize> = HashMap::new();
    for s in shapes {
        *counts.entry(s).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|(_, c)| *c)
        .map(|(s, _)| s.clone())
        .unwrap_or_default()
}

/// Writes a CSV (header + rows) under the config's output directory and
/// echoes it to stdout.
pub fn write_csv(cfg: &RunConfig, name: &str, header: &str, rows: &[String]) {
    std::fs::create_dir_all(&cfg.out_dir).expect("create output dir");
    let path = format!("{}/{name}.csv", cfg.out_dir);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write");
    println!("# {path}");
    println!("{header}");
    for row in rows {
        writeln!(f, "{row}").expect("write");
        println!("{row}");
    }
    println!();
}

/// Renders a scenario's per-point series as CSV rows.
pub fn points_csv(result: &ScenarioResult) -> Vec<String> {
    result
        .points
        .iter()
        .map(|p| {
            format!(
                "{},{:.6},{:.4},{:.4},{}",
                p.estimator, p.x, p.mean_s, p.std_s, p.dominant_shape
            )
        })
        .collect()
}

/// Renders a scenario's summary as CSV rows.
pub fn summary_csv(result: &ScenarioResult) -> Vec<String> {
    result
        .summary
        .iter()
        .map(|(l, mean, std)| format!("{l},{mean:.4},{std:.4}"))
        .collect()
}

/// Convenience: the deduplicated estimator labels of a scenario result.
pub fn estimator_labels(result: &ScenarioResult) -> Vec<String> {
    let mut seen = HashSet::new();
    result
        .points
        .iter()
        .filter(|p| seen.insert(p.estimator.clone()))
        .map(|p| p.estimator.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_datagen::{workload, TpchConfig, TpchData};
    use rqo_exec::AggExpr;

    #[test]
    fn parse_threads_flag() {
        let args: Vec<String> = ["--threads", "8", "--repeats", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = RunConfig::parse(&args);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.repeats, 2);
        assert_eq!(RunConfig::default().threads, 1);
    }

    #[test]
    fn scenario_runner_produces_all_series() {
        let cat = Arc::new(
            TpchData::generate(&TpchConfig {
                scale_factor: 0.005,
                seed: 5,
            })
            .into_catalog(),
        );
        let queries: Vec<(f64, Query)> = [60i64, 130]
            .iter()
            .map(|&q| {
                let pred = workload::exp1_lineitem_predicate(q);
                let x = workload::true_selectivity(cat.table("lineitem").unwrap(), &pred);
                (
                    x,
                    Query::over(&["lineitem"])
                        .filter("lineitem", pred)
                        .aggregate(AggExpr::sum("l_extendedprice", "rev")),
                )
            })
            .collect();
        let cfg = RunConfig {
            repeats: 2,
            sample_size: 200,
            thresholds: vec![0.5, 0.95],
            ..RunConfig::default()
        };
        let params = CostParams::default();
        let result = run_scenario(&cat, &params, &queries, &cfg);
        // 2 thresholds + histogram = 3 estimators × 2 points.
        assert_eq!(result.points.len(), 6);
        assert_eq!(result.summary.len(), 3);
        assert_eq!(estimator_labels(&result).len(), 3);
        for p in &result.points {
            assert!(p.mean_s > 0.0);
            assert!(!p.dominant_shape.is_empty());
        }
        assert_eq!(points_csv(&result).len(), 6);
        assert_eq!(summary_csv(&result).len(), 3);
    }
}
