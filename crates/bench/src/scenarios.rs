//! The paper's three experimental scenarios (§6.2), expressed as query
//! sweeps for [`crate::harness::run_scenario`].

use std::sync::Arc;

use rqo_core::{EstimationRequest, OracleEstimator};
use rqo_datagen::{workload, StarConfig, StarData, TpchConfig, TpchData};
use rqo_exec::AggExpr;
use rqo_optimizer::Query;
use rqo_storage::Catalog;

use crate::harness::RunConfig;

use rqo_core::CardinalityEstimator as _;

/// Builds the TPC-H-like catalog for Experiments 1 and 2.
pub fn tpch_catalog(cfg: &RunConfig) -> Arc<Catalog> {
    Arc::new(
        TpchData::generate(&TpchConfig {
            scale_factor: cfg.scale_factor,
            seed: cfg.seed,
        })
        .into_catalog(),
    )
}

/// Builds the star-schema catalog for Experiment 3.
pub fn star_catalog(cfg: &RunConfig) -> Arc<Catalog> {
    Arc::new(
        StarData::generate(&StarConfig {
            fact_rows: cfg.fact_rows,
            seed: cfg.seed,
        })
        .into_catalog(),
    )
}

/// Experiment 1 (§6.2.1): the two-predicate `lineitem` template swept
/// over the receipt-window offset.  Returns `(true joint selectivity,
/// query)` pairs, sorted by selectivity.
pub fn exp1_queries(catalog: &Catalog) -> Vec<(f64, Query)> {
    let lineitem = catalog.table("lineitem").expect("lineitem exists");
    let mut out: Vec<(f64, Query)> = workload::exp1_offsets()
        .into_iter()
        .map(|offset| {
            let pred = workload::exp1_lineitem_predicate(offset);
            let x = workload::true_selectivity(lineitem, &pred);
            let q = Query::over(&["lineitem"])
                .filter("lineitem", pred)
                .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
            (x, q)
        })
        .collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    out
}

/// Experiment 2 (§6.2.2): `lineitem ⋈ orders ⋈ part` with the correlated
/// `part` predicate swept over the `p_y` window start.  The x-axis is the
/// true *join* selectivity (fraction of `lineitem` rows surviving), which
/// tracks the `part` fraction because part keys are uniform.
pub fn exp2_queries(catalog: &Catalog) -> Vec<(f64, Query)> {
    let part = catalog.table("part").expect("part exists");
    let mut out: Vec<(f64, Query)> = workload::exp2_window_starts()
        .into_iter()
        .map(|start| {
            let pred = workload::exp2_part_predicate(start);
            let x = workload::true_selectivity(part, &pred);
            let q = Query::over(&["lineitem", "orders", "part"])
                .filter("part", pred)
                .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
                .aggregate(AggExpr::count_star("n"));
            (x, q)
        })
        .collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    out
}

/// Experiment 3 (§6.2.3): the four-table star join swept over the
/// diagonal level.  The x-axis is the true fraction of fact rows
/// participating in the join (measured exactly via the oracle).
pub fn exp3_queries(catalog: &Arc<Catalog>) -> Vec<(f64, Query)> {
    let oracle = OracleEstimator::new(Arc::clone(catalog));
    let mut out: Vec<(f64, Query)> = workload::exp3_levels()
        .into_iter()
        .map(|level| {
            let pred = workload::exp3_dim_predicate(level);
            let request = EstimationRequest::new(
                vec!["fact", "dim1", "dim2", "dim3"],
                vec![("dim1", &pred), ("dim2", &pred), ("dim3", &pred)],
            );
            let x = oracle.estimate(&request).selectivity;
            let mut q = Query::over(&["fact", "dim1", "dim2", "dim3"])
                .aggregate(AggExpr::sum("f_measure1", "total"))
                .aggregate(AggExpr::avg("f_measure2", "mean"));
            for dim in ["dim1", "dim2", "dim3"] {
                q = q.filter(dim, workload::exp3_dim_predicate(level));
            }
            (x, q)
        })
        .collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunConfig {
        RunConfig {
            scale_factor: 0.005,
            fact_rows: 20_000,
            ..RunConfig::default()
        }
    }

    #[test]
    fn exp1_sweep_covers_crossover_region() {
        let cat = tpch_catalog(&quick());
        let qs = exp1_queries(&cat);
        assert_eq!(qs.len(), workload::exp1_offsets().len());
        // x ascending, starting at 0, reaching past the ~0.17% crossover.
        assert!(qs.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(qs[0].0, 0.0);
        assert!(qs.last().unwrap().0 > 0.002);
        // Some point inside the paper's 0–0.6% band.
        assert!(qs.iter().any(|(x, _)| *x > 0.0 && *x < 0.006));
    }

    #[test]
    fn exp2_sweep_covers_crossover_region() {
        let cat = tpch_catalog(&quick());
        let qs = exp2_queries(&cat);
        assert!(qs.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(qs[0].0, 0.0);
        assert!(qs.iter().any(|(x, _)| *x > 0.0005 && *x < 0.006));
    }

    #[test]
    fn exp3_sweep_matches_designed_fractions() {
        let cat = star_catalog(&quick());
        let qs = exp3_queries(&cat);
        assert_eq!(qs.len(), 10);
        assert!(qs.windows(2).all(|w| w[0].0 <= w[1].0));
        // Top level ≈ 10%.
        assert!((qs.last().unwrap().0 - 0.10).abs() < 0.01);
    }
}
