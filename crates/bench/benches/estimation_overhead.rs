//! §6.1 microbenchmark: cost of one cardinality-estimation call, robust
//! sampling vs. histogram baseline.
//!
//! The paper reports ~30–40% extra *optimization* time for its sampling
//! prototype; the per-call gap here is the dominant component (evaluating
//! a predicate on 500 sample tuples plus a Beta quantile, vs. a couple of
//! histogram bucket walks).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use rqo_core::{
    CardinalityEstimator, ConfidenceThreshold, EstimationRequest, EstimatorConfig,
    HistogramEstimator, RobustEstimator,
};
use rqo_datagen::{workload, TpchConfig, TpchData};
use rqo_stats::SynopsisRepository;

fn bench_estimation(c: &mut Criterion) {
    let catalog = Arc::new(
        TpchData::generate(&TpchConfig {
            scale_factor: 0.02,
            seed: 42,
        })
        .into_catalog(),
    );
    let repo = Arc::new(SynopsisRepository::build_all(&catalog, 500, 1));
    let robust = RobustEstimator::new(
        Arc::clone(&repo),
        EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.8)),
    );
    let hist = HistogramEstimator::build_default(&catalog);

    let single_pred = workload::exp1_lineitem_predicate(80);
    let join_pred = workload::exp2_part_predicate(250);

    let mut group = c.benchmark_group("estimate_single_table");
    group.bench_function("robust_500", |b| {
        let req = EstimationRequest::single("lineitem", &single_pred);
        b.iter(|| std::hint::black_box(robust.estimate(&req).selectivity))
    });
    group.bench_function("histogram", |b| {
        let req = EstimationRequest::single("lineitem", &single_pred);
        b.iter(|| std::hint::black_box(hist.estimate(&req).selectivity))
    });
    group.finish();

    let mut group = c.benchmark_group("estimate_three_way_join");
    group.bench_function("robust_500", |b| {
        let req = EstimationRequest::new(
            vec!["lineitem", "orders", "part"],
            vec![("part", &join_pred)],
        );
        b.iter(|| std::hint::black_box(robust.estimate(&req).selectivity))
    });
    group.bench_function("histogram", |b| {
        let req = EstimationRequest::new(
            vec!["lineitem", "orders", "part"],
            vec![("part", &join_pred)],
        );
        b.iter(|| std::hint::black_box(hist.estimate(&req).selectivity))
    });
    group.finish();

    // Sample-size scaling of the robust path.
    let mut group = c.benchmark_group("estimate_by_sample_size");
    for n in [100usize, 500, 2500] {
        let repo = Arc::new(SynopsisRepository::build_all(&catalog, n, 2));
        let est = RobustEstimator::new(
            repo,
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.8)),
        );
        group.bench_function(format!("n{n}"), |b| {
            let req = EstimationRequest::single("lineitem", &single_pred);
            b.iter(|| std::hint::black_box(est.estimate(&req).selectivity))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_estimation
}
criterion_main!(benches);
