//! Microbenchmarks of the numerical hot path: the Beta CDF and its
//! inversion, which every robust estimate performs once.

use criterion::{criterion_group, criterion_main, Criterion};
use rqo_math::BetaDistribution;

fn bench_beta(c: &mut Criterion) {
    let posteriors = [
        ("n100_k10", BetaDistribution::new(10.5, 90.5)),
        ("n500_k50", BetaDistribution::new(50.5, 450.5)),
        ("n2500_k2", BetaDistribution::new(2.5, 2498.5)),
    ];

    let mut group = c.benchmark_group("beta_cdf");
    for (name, d) in &posteriors {
        group.bench_function(*name, |b| {
            b.iter(|| std::hint::black_box(d.cdf(std::hint::black_box(0.1))))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("beta_quantile");
    for (name, d) in &posteriors {
        group.bench_function(*name, |b| {
            b.iter(|| std::hint::black_box(d.quantile(std::hint::black_box(0.8))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_beta
}
criterion_main!(benches);
