//! Benchmark of the offline precomputation phase (§3.2): join-synopsis
//! construction across sample sizes, and histogram construction for
//! comparison — the paper's `UPDATE STATISTICS` analogue.

use criterion::{criterion_group, criterion_main, Criterion};
use rqo_core::HistogramEstimator;
use rqo_datagen::{TpchConfig, TpchData};
use rqo_stats::JoinSynopsis;

fn bench_build(c: &mut Criterion) {
    let catalog = TpchData::generate(&TpchConfig {
        scale_factor: 0.02, // ~120k lineitem
        seed: 7,
    })
    .into_catalog();

    let mut group = c.benchmark_group("synopsis_build_lineitem");
    group.sample_size(20);
    for n in [100usize, 500, 2500] {
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| std::hint::black_box(JoinSynopsis::build(&catalog, "lineitem", n, 1)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("histogram_build_all");
    group.sample_size(10);
    group.bench_function("buckets250", |b| {
        b.iter(|| std::hint::black_box(HistogramEstimator::build_default(&catalog)))
    });
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
