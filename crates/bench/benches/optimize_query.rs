//! End-to-end optimization-time benchmark (§6.1's headline measurement):
//! full plan search for the paper's query scenarios under the robust
//! estimator vs. the histogram baseline.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use rqo_core::{
    CardinalityEstimator, ConfidenceThreshold, EstimatorConfig, HistogramEstimator, RobustEstimator,
};
use rqo_datagen::{workload, TpchConfig, TpchData};
use rqo_exec::AggExpr;
use rqo_optimizer::{detect_sorted_columns, Optimizer, Query};
use rqo_stats::SynopsisRepository;
use rqo_storage::CostParams;

fn bench_optimize(c: &mut Criterion) {
    let catalog = Arc::new(
        TpchData::generate(&TpchConfig {
            scale_factor: 0.02,
            seed: 9,
        })
        .into_catalog(),
    );
    let sorted = detect_sorted_columns(&catalog);
    let repo = Arc::new(SynopsisRepository::build_all(&catalog, 500, 3));
    let robust: Arc<dyn CardinalityEstimator> = Arc::new(RobustEstimator::new(
        repo,
        EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.8)),
    ));
    let hist: Arc<dyn CardinalityEstimator> = Arc::new(HistogramEstimator::build_default(&catalog));

    let single = Query::over(&["lineitem"])
        .filter("lineitem", workload::exp1_lineitem_predicate(80))
        .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
    let join3 = Query::over(&["lineitem", "orders", "part"])
        .filter("part", workload::exp2_part_predicate(250))
        .aggregate(AggExpr::count_star("n"));

    for (est_name, est) in [("robust", &robust), ("histogram", &hist)] {
        let opt = Optimizer::with_metadata(
            Arc::clone(&catalog),
            CostParams::default(),
            Arc::clone(est),
            sorted.clone(),
        );
        let mut group = c.benchmark_group(format!("optimize_{est_name}"));
        group.bench_function("single_table", |b| {
            b.iter(|| std::hint::black_box(opt.optimize(&single).estimated_cost_ms))
        });
        group.bench_function("three_way_join", |b| {
            b.iter(|| std::hint::black_box(opt.optimize(&join3).estimated_cost_ms))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_optimize
}
criterion_main!(benches);
