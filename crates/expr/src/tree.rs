//! The expression tree.

// Builder methods `add`/`sub`/`mul`/`div`/`not` intentionally mirror SQL
// operator names rather than implementing the std operator traits, which
// would force `Expr: Sized` receivers and obscure the DSL.
#![allow(clippy::should_implement_trait)]

use std::fmt;
use std::ops::Bound;

use rqo_storage::{Schema, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Logical AND (Kleene).
    And,
    /// Logical OR (Kleene).
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// True for the six comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// The comparison with its operands swapped (`a < b` ⇔ `b > a`).
    ///
    /// # Panics
    ///
    /// Panics when called on a non-comparison operator.
    pub fn flip(&self) -> BinaryOp {
        match self {
            BinaryOp::Eq => BinaryOp::Eq,
            BinaryOp::Ne => BinaryOp::Ne,
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::Le => BinaryOp::Ge,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::Ge => BinaryOp::Le,
            other => panic!("flip on non-comparison {other:?}"),
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT (Kleene).
    Not,
    /// Numeric negation.
    Neg,
    /// `IS NULL`.
    IsNull,
}

/// Errors from binding an expression to a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A named column was not found in the schema.
    UnknownColumn(String),
    /// Evaluation was attempted on an unbound column reference.
    Unbound(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            ExprError::Unbound(c) => write!(f, "unbound column reference {c:?}"),
        }
    }
}

impl std::error::Error for ExprError {}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A named column reference (unbound).
    Col(String),
    /// A bound column reference: ordinal into the input row.  The name is
    /// retained for display.
    ColIdx(usize, String),
    /// A literal value.
    Lit(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr BETWEEN lo AND hi` (inclusive both sides).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
    },
    /// `expr LIKE pattern` with `%`/`_` wildcards.
    Like {
        /// Tested expression (must evaluate to a string).
        expr: Box<Expr>,
        /// Pattern with SQL wildcards.
        pattern: String,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Value>,
    },
}

impl Expr {
    /// A named column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// A literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, self, other)
    }

    /// `self <> other`
    pub fn ne(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Ne, self, other)
    }

    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Lt, self, other)
    }

    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Le, self, other)
    }

    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Gt, self, other)
    }

    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Ge, self, other)
    }

    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::And, self, other)
    }

    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Or, self, other)
    }

    /// `self + other`
    pub fn add(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Add, self, other)
    }

    /// `self - other`
    pub fn sub(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Sub, self, other)
    }

    /// `self * other`
    pub fn mul(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Mul, self, other)
    }

    /// `self / other`
    pub fn div(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Div, self, other)
    }

    /// `NOT self`
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(self),
        }
    }

    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::Unary {
            op: UnaryOp::IsNull,
            expr: Box::new(self),
        }
    }

    /// `self BETWEEN lo AND hi`
    pub fn between(self, lo: Expr, hi: Expr) -> Expr {
        Expr::Between {
            expr: Box::new(self),
            lo: Box::new(lo),
            hi: Box::new(hi),
        }
    }

    /// `self LIKE pattern`
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
        }
    }

    /// `self IN (list)`
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
        }
    }

    /// ANDs a list of predicates together; `None` when the list is empty.
    pub fn conjunction(mut exprs: Vec<Expr>) -> Option<Expr> {
        let mut acc = exprs.pop()?;
        while let Some(e) = exprs.pop() {
            acc = e.and(acc);
        }
        Some(acc)
    }

    /// Resolves all `Col(name)` references against a schema, producing an
    /// expression that evaluates without string lookups.
    pub fn bind(&self, schema: &Schema) -> Result<Expr, ExprError> {
        Ok(match self {
            Expr::Col(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| ExprError::UnknownColumn(name.clone()))?;
                Expr::ColIdx(idx, name.clone())
            }
            // Re-binding to a different schema: resolve by retained name.
            Expr::ColIdx(_, name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| ExprError::UnknownColumn(name.clone()))?;
                Expr::ColIdx(idx, name.clone())
            }
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.bind(schema)?),
            },
            Expr::Between { expr, lo, hi } => Expr::Between {
                expr: Box::new(expr.bind(schema)?),
                lo: Box::new(lo.bind(schema)?),
                hi: Box::new(hi.bind(schema)?),
            },
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(expr.bind(schema)?),
                pattern: pattern.clone(),
            },
            Expr::InList { expr, list } => Expr::InList {
                expr: Box::new(expr.bind(schema)?),
                list: list.clone(),
            },
        })
    }

    /// Collects the names of all referenced columns (deduplicated, in first
    /// appearance order).
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        let mut push = |name: &'a str| {
            if !out.contains(&name) {
                out.push(name);
            }
        };
        match self {
            Expr::Col(name) | Expr::ColIdx(_, name) => push(name),
            Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Between { expr, lo, hi } => {
                expr.collect_columns(out);
                lo.collect_columns(out);
                hi.collect_columns(out);
            }
            Expr::Like { expr, .. } | Expr::InList { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Splits a conjunctive predicate into its AND-ed factors.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                left.collect_conjuncts(out);
                right.collect_conjuncts(out);
            }
            other => out.push(other),
        }
    }

    /// Evaluates this expression to a constant when it references no
    /// columns (constant folding).  Returns `None` for column-dependent
    /// expressions and for NULL-valued constants.
    ///
    /// This is what lets the index-matching machinery see through the
    /// paper's query template `l_receiptdate BETWEEN '07/01/97' + ? AND
    /// '09/30/97' + ?`: the bounds are arithmetic over literals, not bare
    /// literals.
    pub fn const_value(&self) -> Option<Value> {
        if !self.referenced_columns().is_empty() {
            return None;
        }
        match self.eval(&[]) {
            Value::Null => None,
            v => Some(v),
        }
    }

    /// Recognizes this predicate as a single-column range:
    /// `col op constant`, `constant op col`, or
    /// `col BETWEEN constant AND constant`, where "constant" is any
    /// column-free expression (folded via [`Expr::const_value`]).
    ///
    /// Returns `(column name, lower bound, upper bound)` when the predicate
    /// constrains exactly one column against constants — the shape an index
    /// seek (and a one-dimensional histogram) can serve.
    pub fn as_column_range(&self) -> Option<(&str, Bound<Value>, Bound<Value>)> {
        fn col_name(e: &Expr) -> Option<&str> {
            match e {
                Expr::Col(n) | Expr::ColIdx(_, n) => Some(n.as_str()),
                _ => None,
            }
        }
        match self {
            Expr::Binary { op, left, right } if op.is_comparison() => {
                let (name, lit, op) =
                    if let (Some(n), Some(v)) = (col_name(left), right.const_value()) {
                        (n, v, *op)
                    } else if let (Some(v), Some(n)) = (left.const_value(), col_name(right)) {
                        (n, v, op.flip())
                    } else {
                        return None;
                    };
                let range = match op {
                    BinaryOp::Eq => (Bound::Included(lit.clone()), Bound::Included(lit)),
                    BinaryOp::Lt => (Bound::Unbounded, Bound::Excluded(lit)),
                    BinaryOp::Le => (Bound::Unbounded, Bound::Included(lit)),
                    BinaryOp::Gt => (Bound::Excluded(lit), Bound::Unbounded),
                    BinaryOp::Ge => (Bound::Included(lit), Bound::Unbounded),
                    _ => return None, // Ne is not a contiguous range
                };
                Some((name, range.0, range.1))
            }
            Expr::Between { expr, lo, hi } => {
                let n = col_name(expr)?;
                let a = lo.const_value()?;
                let b = hi.const_value()?;
                Some((n, Bound::Included(a), Bound::Included(b)))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => write!(f, "{n}"),
            Expr::ColIdx(i, n) => write!(f, "{n}#{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::IsNull => write!(f, "({expr} IS NULL)"),
            },
            Expr::Between { expr, lo, hi } => write!(f, "({expr} BETWEEN {lo} AND {hi})"),
            Expr::Like { expr, pattern } => write!(f, "({expr} LIKE '{pattern}')"),
            Expr::InList { expr, list } => {
                write!(f, "({expr} IN (")?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_storage::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Float)])
    }

    #[test]
    fn bind_resolves_ordinals() {
        let e = Expr::col("b")
            .gt(Expr::lit(1.0))
            .and(Expr::col("a").eq(Expr::lit(3i64)));
        let bound = e.bind(&schema()).unwrap();
        let shown = bound.to_string();
        assert!(shown.contains("b#1"), "{shown}");
        assert!(shown.contains("a#0"), "{shown}");
    }

    #[test]
    fn bind_unknown_column_fails() {
        let e = Expr::col("zzz").eq(Expr::lit(1i64));
        assert_eq!(
            e.bind(&schema()),
            Err(ExprError::UnknownColumn("zzz".into()))
        );
    }

    #[test]
    fn rebind_to_new_schema() {
        let s1 = schema();
        let s2 = Schema::from_pairs(&[("b", DataType::Float), ("a", DataType::Int)]);
        let e = Expr::col("a").eq(Expr::lit(1i64)).bind(&s1).unwrap();
        let re = e.bind(&s2).unwrap();
        assert!(re.to_string().contains("a#1"));
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::col("a")
            .gt(Expr::lit(1i64))
            .and(Expr::col("b").lt(Expr::col("a")));
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
    }

    #[test]
    fn conjuncts_flatten() {
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").gt(Expr::lit(0.0)))
            .and(Expr::col("a").lt(Expr::lit(10i64)));
        assert_eq!(e.conjuncts().len(), 3);
        // OR does not flatten.
        let e2 = Expr::col("a")
            .eq(Expr::lit(1i64))
            .or(Expr::col("a").eq(Expr::lit(2i64)));
        assert_eq!(e2.conjuncts().len(), 1);
    }

    #[test]
    fn conjunction_builder() {
        assert!(Expr::conjunction(vec![]).is_none());
        let single = Expr::conjunction(vec![Expr::col("a").eq(Expr::lit(1i64))]).unwrap();
        assert_eq!(single.conjuncts().len(), 1);
        let multi = Expr::conjunction(vec![
            Expr::col("a").eq(Expr::lit(1i64)),
            Expr::col("b").gt(Expr::lit(2.0)),
        ])
        .unwrap();
        assert_eq!(multi.conjuncts().len(), 2);
    }

    #[test]
    fn column_range_recognition() {
        let e = Expr::col("a").between(Expr::lit(5i64), Expr::lit(9i64));
        let (col, lo, hi) = e.as_column_range().unwrap();
        assert_eq!(col, "a");
        assert_eq!(lo, Bound::Included(Value::Int(5)));
        assert_eq!(hi, Bound::Included(Value::Int(9)));

        let e = Expr::col("a").lt(Expr::lit(3i64));
        let (col, lo, hi) = e.as_column_range().unwrap();
        assert_eq!(col, "a");
        assert_eq!(lo, Bound::Unbounded);
        assert_eq!(hi, Bound::Excluded(Value::Int(3)));

        // Flipped literal side: 3 < a means a > 3.
        let e = Expr::lit(3i64).lt(Expr::col("a"));
        let (col, lo, hi) = e.as_column_range().unwrap();
        assert_eq!(col, "a");
        assert_eq!(lo, Bound::Excluded(Value::Int(3)));
        assert_eq!(hi, Bound::Unbounded);

        let e = Expr::col("a").eq(Expr::lit(7i64));
        let (_, lo, hi) = e.as_column_range().unwrap();
        assert_eq!(lo, Bound::Included(Value::Int(7)));
        assert_eq!(hi, Bound::Included(Value::Int(7)));

        // Non-range shapes.
        assert!(Expr::col("a")
            .ne(Expr::lit(1i64))
            .as_column_range()
            .is_none());
        assert!(Expr::col("a")
            .lt(Expr::col("b"))
            .as_column_range()
            .is_none());
        assert!(Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").gt(Expr::lit(0.0)))
            .as_column_range()
            .is_none());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::col("a")
            .between(Expr::lit(1i64), Expr::lit(2i64))
            .and(Expr::col("b").like("B#%"));
        assert_eq!(e.to_string(), "((a BETWEEN 1 AND 2) AND (b LIKE 'B#%'))");
    }

    #[test]
    fn flip_comparisons() {
        assert_eq!(BinaryOp::Lt.flip(), BinaryOp::Gt);
        assert_eq!(BinaryOp::Ge.flip(), BinaryOp::Le);
        assert_eq!(BinaryOp::Eq.flip(), BinaryOp::Eq);
    }

    #[test]
    #[should_panic(expected = "flip on non-comparison")]
    fn flip_rejects_arith() {
        BinaryOp::Add.flip();
    }
}
