//! Vectorized predicate evaluation over typed columns.
//!
//! [`select`] evaluates a bound predicate against a set of
//! [`ColumnRef`]s and returns the *selection vector* of qualifying row
//! ids (ascending), instead of materializing filtered rows.  The common
//! predicate shapes — conjunctions, `column <op> constant` comparisons,
//! `BETWEEN`, `LIKE`, `IN` — run as tight per-column loops the compiler
//! can unroll and auto-vectorize; every other shape falls back to
//! row-at-a-time [`eval_bool`] over values materialized from the columns,
//! so the result is *always* identical (including panics on type errors)
//! to filtering with the row evaluator.
//!
//! Equivalence invariants (pinned by `crates/exec/tests/kernel_oracle.rs`):
//!
//! - a row id survives iff `eval_bool(expr, row)` is true for that row
//!   (SQL semantics: NULL comparisons are "unknown", which `WHERE`
//!   treats as false);
//! - ids come out in candidate order, so downstream row materialization
//!   is order-identical to the row-at-a-time path;
//! - conjunctions short-circuit left-to-right: the right conjunct is
//!   only evaluated on the left conjunct's survivors, exactly like the
//!   row evaluator's lazy `AND`.

use std::cmp::Ordering;
use std::ops::Range;

use rqo_storage::{ColumnRef, NullMask, Value};

use crate::eval::eval_bool;
use crate::like::like_match;
use crate::tree::{BinaryOp, Expr};

/// The candidate row ids a kernel evaluates a predicate over: either a
/// dense morsel range or a prior selection vector.
#[derive(Debug, Clone)]
pub enum Candidates<'a> {
    /// Every row id in the range.
    Range(Range<usize>),
    /// An ascending list of row ids (a prior selection vector).
    List(&'a [u32]),
}

/// Evaluates `expr` over `cols` and returns the selection vector of
/// candidate ids for which the predicate is true.
///
/// `cols` is indexed by column ordinal (full batch arity); every ordinal
/// the bound expression references must be `Some`.  `None` entries are
/// legal only for unreferenced columns — they materialize as NULL in the
/// row-fallback path and are never read by a bound predicate.
///
/// # Panics
///
/// Panics exactly where the row evaluator would: unbound `Col` nodes,
/// type errors (`LIKE` on an integer, comparisons between incomparable
/// types), out-of-range ordinals.
pub fn select(expr: &Expr, cols: &[Option<ColumnRef<'_>>], cand: Candidates<'_>) -> Vec<u32> {
    debug_assert!(
        refs_columnarized(expr, cols),
        "predicate references a column that was not columnarized"
    );
    select_inner(expr, cols, &cand)
}

fn select_inner(expr: &Expr, cols: &[Option<ColumnRef<'_>>], cand: &Candidates<'_>) -> Vec<u32> {
    match expr {
        // AND short-circuits left-to-right: evaluate the right conjunct
        // only on the left conjunct's survivors.  Identical to the row
        // evaluator's Kleene AND under WHERE semantics: a row passes iff
        // both sides evaluate to true.
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let lhs = select_inner(left, cols, cand);
            select_inner(right, cols, &Candidates::List(&lhs))
        }
        Expr::Binary { op, left, right } if op.is_comparison() => {
            // Normalize to `column <op> constant` (flipping the operator
            // when the column is on the right), then dispatch to a typed
            // loop mirroring Value::total_cmp's coercion table.
            let normalized = match (left.as_ref(), right.as_ref()) {
                (Expr::ColIdx(i, _), rhs) if column_free(rhs) => Some((*i, *op, rhs)),
                (lhs, Expr::ColIdx(i, _)) if column_free(lhs) => Some((*i, op.flip(), lhs)),
                _ => None,
            };
            if let Some((ord, op, lit_expr)) = normalized {
                if let Some(col) = &cols[ord] {
                    let lit = lit_expr.eval(&[]);
                    if lit.is_null() {
                        // NULL comparand: the comparison is NULL for
                        // every row, which WHERE treats as false.
                        return Vec::new();
                    }
                    if let Some(out) = cmp_select(col, op, &lit, cand) {
                        return out;
                    }
                }
            }
            select_fallback(expr, cols, cand)
        }
        Expr::Between { expr: v, lo, hi } => {
            if let Expr::ColIdx(ord, _) = v.as_ref() {
                if column_free(lo) && column_free(hi) {
                    if let Some(col) = &cols[*ord] {
                        let (lo, hi) = (lo.eval(&[]), hi.eval(&[]));
                        if lo.is_null() || hi.is_null() {
                            return Vec::new();
                        }
                        // BETWEEN is (v >= lo) AND (v <= hi) on non-NULL
                        // rows; compose the two typed comparisons.
                        if let Some(ge) = cmp_select(col, BinaryOp::Ge, &lo, cand) {
                            if let Some(out) =
                                cmp_select(col, BinaryOp::Le, &hi, &Candidates::List(&ge))
                            {
                                return out;
                            }
                        }
                    }
                }
            }
            select_fallback(expr, cols, cand)
        }
        Expr::Like { expr: v, pattern } => {
            if let Expr::ColIdx(ord, _) = v.as_ref() {
                if let Some(ColumnRef::Str { codes, dict, nulls }) = &cols[*ord] {
                    // Match the pattern once per distinct dictionary
                    // entry, then the per-row loop is a table lookup.
                    let pass: Vec<bool> = dict.iter().map(|d| like_match(pattern, d)).collect();
                    return select_where(cand, |i| !null_at(*nulls, i) && pass[codes[i] as usize]);
                }
            }
            select_fallback(expr, cols, cand)
        }
        Expr::InList { expr: v, list } => {
            if let Expr::ColIdx(ord, _) = v.as_ref() {
                if let Some(col) = &cols[*ord] {
                    let col = *col;
                    return select_where(cand, |i| {
                        if col.is_null(i) {
                            return false; // NULL IN (...) is unknown
                        }
                        let v = col.value(i);
                        list.iter().any(|c| c == &v)
                    });
                }
            }
            select_fallback(expr, cols, cand)
        }
        _ => select_fallback(expr, cols, cand),
    }
}

/// Typed comparison loop: `column <op> lit` over the candidates, with
/// the column as the *left* operand.  Returns `None` for type pairings
/// outside `Value::total_cmp`'s coercion table so the caller falls back
/// to the row evaluator (which panics on them, as documented).
fn cmp_select(
    col: &ColumnRef<'_>,
    op: BinaryOp,
    lit: &Value,
    cand: &Candidates<'_>,
) -> Option<Vec<u32>> {
    Some(match (col, lit) {
        (ColumnRef::Int { values, nulls }, Value::Int(b)) => {
            let b = *b;
            select_where(cand, |i| {
                !null_at(*nulls, i) && ord_ok(op, values[i].cmp(&b))
            })
        }
        (ColumnRef::Int { values, nulls }, Value::Float(b)) => {
            let b = *b;
            select_where(cand, |i| {
                !null_at(*nulls, i) && ord_ok(op, (values[i] as f64).total_cmp(&b))
            })
        }
        (ColumnRef::Int { values, nulls }, Value::Date(b)) => {
            let b = *b as i64;
            select_where(cand, |i| {
                !null_at(*nulls, i) && ord_ok(op, values[i].cmp(&b))
            })
        }
        (ColumnRef::Float { values, nulls }, Value::Float(b)) => {
            let b = *b;
            select_where(cand, |i| {
                !null_at(*nulls, i) && ord_ok(op, values[i].total_cmp(&b))
            })
        }
        (ColumnRef::Float { values, nulls }, Value::Int(b)) => {
            let b = *b as f64;
            select_where(cand, |i| {
                !null_at(*nulls, i) && ord_ok(op, values[i].total_cmp(&b))
            })
        }
        (ColumnRef::Date { values, nulls }, Value::Date(b)) => {
            let b = *b;
            select_where(cand, |i| {
                !null_at(*nulls, i) && ord_ok(op, values[i].cmp(&b))
            })
        }
        (ColumnRef::Date { values, nulls }, Value::Int(b)) => {
            let b = *b;
            select_where(cand, |i| {
                !null_at(*nulls, i) && ord_ok(op, (values[i] as i64).cmp(&b))
            })
        }
        (ColumnRef::Bool { values, nulls }, Value::Bool(b)) => {
            let b = *b;
            select_where(cand, |i| {
                !null_at(*nulls, i) && ord_ok(op, values[i].cmp(&b))
            })
        }
        (ColumnRef::Str { codes, dict, nulls }, Value::Str(s)) => {
            // Compare once per distinct dictionary entry.
            let pass: Vec<bool> = dict
                .iter()
                .map(|d| ord_ok(op, d.as_ref().cmp(s.as_ref())))
                .collect();
            select_where(cand, |i| !null_at(*nulls, i) && pass[codes[i] as usize])
        }
        (ColumnRef::Mixed(values), lit) => select_where(cand, |i| {
            let v = &values[i];
            !v.is_null() && ord_ok(op, v.total_cmp(lit))
        }),
        _ => return None,
    })
}

/// Row-at-a-time fallback for predicate shapes without a typed kernel:
/// materializes the referenced columns into a scratch row and runs the
/// ordinary evaluator, so semantics (including panics) match exactly.
fn select_fallback(expr: &Expr, cols: &[Option<ColumnRef<'_>>], cand: &Candidates<'_>) -> Vec<u32> {
    let mut row: Vec<Value> = vec![Value::Null; cols.len()];
    select_where(cand, |i| {
        for (slot, c) in row.iter_mut().zip(cols) {
            *slot = match c {
                Some(r) => r.value(i),
                None => Value::Null,
            };
        }
        eval_bool(expr, &row)
    })
}

/// Runs `keep` over the candidates in order, collecting passing ids.
fn select_where(cand: &Candidates<'_>, mut keep: impl FnMut(usize) -> bool) -> Vec<u32> {
    let mut out = Vec::new();
    match cand {
        Candidates::Range(r) => {
            for i in r.clone() {
                if keep(i) {
                    out.push(i as u32);
                }
            }
        }
        Candidates::List(ids) => {
            for &i in *ids {
                if keep(i as usize) {
                    out.push(i);
                }
            }
        }
    }
    out
}

/// Mirrors the row evaluator's ordering-to-boolean mapping exactly.
fn ord_ok(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::Ne => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::Le => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::Ge => ord != Ordering::Less,
        other => panic!("ord_ok on non-comparison {other:?}"),
    }
}

fn null_at(nulls: Option<&NullMask>, i: usize) -> bool {
    nulls.is_some_and(|m| m.is_null(i))
}

/// True when the expression references no columns (safe to evaluate
/// against an empty row).
fn column_free(e: &Expr) -> bool {
    match e {
        Expr::Col(_) | Expr::ColIdx(..) => false,
        Expr::Lit(_) => true,
        Expr::Binary { left, right, .. } => column_free(left) && column_free(right),
        Expr::Unary { expr, .. } => column_free(expr),
        Expr::Between { expr, lo, hi } => column_free(expr) && column_free(lo) && column_free(hi),
        Expr::Like { expr, .. } | Expr::InList { expr, .. } => column_free(expr),
    }
}

/// Debug-only contract check: every referenced ordinal has a column.
fn refs_columnarized(e: &Expr, cols: &[Option<ColumnRef<'_>>]) -> bool {
    match e {
        Expr::Col(_) => true, // unbound: eval will panic with its own message
        Expr::ColIdx(i, _) => cols.get(*i).is_some_and(Option::is_some),
        Expr::Lit(_) => true,
        Expr::Binary { left, right, .. } => {
            refs_columnarized(left, cols) && refs_columnarized(right, cols)
        }
        Expr::Unary { expr, .. } => refs_columnarized(expr, cols),
        Expr::Between { expr, lo, hi } => {
            refs_columnarized(expr, cols)
                && refs_columnarized(lo, cols)
                && refs_columnarized(hi, cols)
        }
        Expr::Like { expr, .. } | Expr::InList { expr, .. } => refs_columnarized(expr, cols),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_storage::{parse_date, ColumnVec, DataType, Schema};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("s", DataType::Str),
            ("d", DataType::Date),
        ])
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![
                Value::Int(1),
                Value::Float(0.5),
                Value::str("apple"),
                parse_date("1997-07-01"),
            ],
            vec![
                Value::Null,
                Value::Float(1.5),
                Value::str("banana"),
                parse_date("1997-08-01"),
            ],
            vec![
                Value::Int(3),
                Value::Null,
                Value::str("apricot"),
                parse_date("1997-09-01"),
            ],
            vec![
                Value::Int(4),
                Value::Float(3.5),
                Value::str("apple"),
                parse_date("1997-10-01"),
            ],
        ]
    }

    fn check(pred: Expr) {
        let schema = schema();
        let rows = rows();
        let bound = pred.bind(&schema).unwrap();
        let vecs: Vec<ColumnVec> = (0..schema.len())
            .map(|i| ColumnVec::from_rows(&rows, i, schema.column(i).data_type))
            .collect();
        let refs: Vec<Option<ColumnRef<'_>>> =
            vecs.iter().map(|v| Some(v.as_column_ref())).collect();
        let got = select(&bound, &refs, Candidates::Range(0..rows.len()));
        let want: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| eval_bool(&bound, r))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, want, "selection mismatch for {bound:?}");
    }

    #[test]
    fn typed_comparisons_match_row_eval() {
        check(Expr::col("a").ge(Expr::lit(3i64)));
        check(Expr::col("a").lt(Expr::lit(4i64)));
        check(Expr::lit(2i64).le(Expr::col("a"))); // flipped operand order
        check(Expr::col("a").gt(Expr::lit(1.5))); // Int column vs Float lit
        check(Expr::col("b").le(Expr::lit(2i64))); // Float column vs Int lit
        check(Expr::col("b").ne(Expr::lit(1.5)));
        check(Expr::col("s").eq(Expr::lit(Value::str("apple"))));
        check(Expr::col("s").gt(Expr::lit(Value::str("apq"))));
        check(Expr::col("d").ge(Expr::lit(parse_date("1997-08-01"))));
    }

    #[test]
    fn compound_shapes_match_row_eval() {
        check(
            Expr::col("a")
                .ge(Expr::lit(1i64))
                .and(Expr::col("b").lt(Expr::lit(2.0))),
        );
        check(Expr::col("a").between(Expr::lit(1i64), Expr::lit(3i64)));
        check(Expr::col("d").between(
            Expr::lit(parse_date("1997-07-01")).add(Expr::lit(10i64)),
            Expr::lit(parse_date("1997-09-30")),
        ));
        check(Expr::col("s").like("ap%"));
        check(Expr::col("s").like("%an%"));
        check(Expr::col("a").in_list(vec![Value::Int(1), Value::Int(4)]));
        // Fallback shapes: OR, NOT, IS NULL.
        check(
            Expr::col("a")
                .eq(Expr::lit(1i64))
                .or(Expr::col("s").eq(Expr::lit(Value::str("banana")))),
        );
        check(Expr::col("a").is_null());
        check(Expr::col("a").eq(Expr::lit(1i64)).not());
        // NULL comparand: empty selection (WHERE semantics).
        check(Expr::col("a").eq(Expr::lit(Value::Null)));
        check(Expr::col("a").between(Expr::lit(Value::Null), Expr::lit(3i64)));
    }

    #[test]
    fn list_candidates_restrict_and_preserve_order() {
        let schema = schema();
        let rows = rows();
        let bound = Expr::col("a").ge(Expr::lit(1i64)).bind(&schema).unwrap();
        let vecs: Vec<ColumnVec> = (0..schema.len())
            .map(|i| ColumnVec::from_rows(&rows, i, schema.column(i).data_type))
            .collect();
        let refs: Vec<Option<ColumnRef<'_>>> =
            vecs.iter().map(|v| Some(v.as_column_ref())).collect();
        let cand = [0u32, 3u32];
        let got = select(&bound, &refs, Candidates::List(&cand));
        assert_eq!(got, vec![0, 3]);
    }
}
