//! Expression evaluation with SQL three-valued logic.

use rqo_storage::Value;

use crate::like::like_match;
use crate::tree::{BinaryOp, Expr, UnaryOp};

impl Expr {
    /// Evaluates the expression against a row.
    ///
    /// The expression must have been [bound](Expr::bind) first: `Col` nodes
    /// panic here so that an unbound expression fails loudly the first time
    /// it is used rather than silently producing wrong answers.
    ///
    /// NULL semantics follow SQL: comparisons and arithmetic involving NULL
    /// yield NULL; `AND`/`OR`/`NOT` use Kleene logic; `IS NULL` never
    /// returns NULL.
    ///
    /// # Panics
    ///
    /// Panics on unbound column references, on type errors (e.g. `LIKE` on
    /// an integer), and on out-of-range column ordinals — all of which are
    /// planner bugs, not data-dependent conditions.
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            Expr::Col(name) => panic!("evaluating unbound column {name:?}; call bind() first"),
            Expr::ColIdx(i, _) => row[*i].clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Binary { op, left, right } => {
                eval_binary(*op, left.eval(row), || right.eval(row))
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(row);
                match op {
                    UnaryOp::IsNull => Value::Bool(v.is_null()),
                    UnaryOp::Not => match v {
                        Value::Null => Value::Null,
                        Value::Bool(b) => Value::Bool(!b),
                        other => panic!("NOT on non-boolean {other:?}"),
                    },
                    UnaryOp::Neg => match v {
                        Value::Null => Value::Null,
                        Value::Int(x) => Value::Int(-x),
                        Value::Float(x) => Value::Float(-x),
                        other => panic!("negation of non-numeric {other:?}"),
                    },
                }
            }
            Expr::Between { expr, lo, hi } => {
                let v = expr.eval(row);
                if v.is_null() {
                    return Value::Null;
                }
                let lo = lo.eval(row);
                let hi = hi.eval(row);
                if lo.is_null() || hi.is_null() {
                    return Value::Null;
                }
                Value::Bool(
                    v.total_cmp(&lo) != std::cmp::Ordering::Less
                        && v.total_cmp(&hi) != std::cmp::Ordering::Greater,
                )
            }
            Expr::Like { expr, pattern } => {
                let v = expr.eval(row);
                match v {
                    Value::Null => Value::Null,
                    Value::Str(s) => Value::Bool(like_match(pattern, &s)),
                    other => panic!("LIKE on non-string {other:?}"),
                }
            }
            Expr::InList { expr, list } => {
                let v = expr.eval(row);
                if v.is_null() {
                    return Value::Null;
                }
                Value::Bool(list.iter().any(|c| c == &v))
            }
        }
    }
}

fn eval_binary(op: BinaryOp, left: Value, right: impl FnOnce() -> Value) -> Value {
    use BinaryOp::*;
    match op {
        And => match left {
            Value::Bool(false) => Value::Bool(false),
            Value::Bool(true) => match right() {
                Value::Bool(b) => Value::Bool(b),
                Value::Null => Value::Null,
                other => panic!("AND on non-boolean {other:?}"),
            },
            Value::Null => match right() {
                Value::Bool(false) => Value::Bool(false),
                Value::Bool(true) | Value::Null => Value::Null,
                other => panic!("AND on non-boolean {other:?}"),
            },
            other => panic!("AND on non-boolean {other:?}"),
        },
        Or => match left {
            Value::Bool(true) => Value::Bool(true),
            Value::Bool(false) => match right() {
                Value::Bool(b) => Value::Bool(b),
                Value::Null => Value::Null,
                other => panic!("OR on non-boolean {other:?}"),
            },
            Value::Null => match right() {
                Value::Bool(true) => Value::Bool(true),
                Value::Bool(false) | Value::Null => Value::Null,
                other => panic!("OR on non-boolean {other:?}"),
            },
            other => panic!("OR on non-boolean {other:?}"),
        },
        Eq | Ne | Lt | Le | Gt | Ge => {
            let right = right();
            if left.is_null() || right.is_null() {
                return Value::Null;
            }
            let ord = left.total_cmp(&right);
            use std::cmp::Ordering::*;
            let b = match op {
                Eq => ord == Equal,
                Ne => ord != Equal,
                Lt => ord == Less,
                Le => ord != Greater,
                Gt => ord == Greater,
                Ge => ord != Less,
                _ => unreachable!(),
            };
            Value::Bool(b)
        }
        Add | Sub | Mul | Div => {
            let right = right();
            if left.is_null() || right.is_null() {
                return Value::Null;
            }
            // Integer arithmetic when both sides are Int/Date; float
            // otherwise.  Date + Int yields Date (day arithmetic), matching
            // the paper's template `'07/01/97' + ?`.
            match (&left, &right) {
                // Date ± days and days + Date are meaningful; `Int − Date`
                // is not (what would "5 minus July 1st" be?) and panics
                // rather than silently producing a bogus date.
                (Value::Date(d), Value::Int(n)) => match op {
                    Add => Value::Date(d + *n as i32),
                    Sub => Value::Date(d - *n as i32),
                    _ => panic!("unsupported date arithmetic {op}"),
                },
                (Value::Int(n), Value::Date(d)) => match op {
                    Add => Value::Date(d + *n as i32),
                    _ => panic!("unsupported arithmetic Int {op} Date"),
                },
                (Value::Date(a), Value::Date(b)) if op == Sub => Value::Int((a - b) as i64),
                (Value::Int(a), Value::Int(b)) => match op {
                    Add => Value::Int(a + b),
                    Sub => Value::Int(a - b),
                    Mul => Value::Int(a * b),
                    Div => {
                        if *b == 0 {
                            Value::Null
                        } else {
                            Value::Int(a / b)
                        }
                    }
                    _ => unreachable!(),
                },
                _ => {
                    let a = left.as_f64();
                    let b = right.as_f64();
                    let r = match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => {
                            if b == 0.0 {
                                return Value::Null;
                            }
                            a / b
                        }
                        _ => unreachable!(),
                    };
                    Value::Float(r)
                }
            }
        }
    }
}

/// Evaluates a predicate to a plain boolean: NULL (SQL "unknown") is
/// *false*, matching `WHERE`-clause semantics.
///
/// # Panics
///
/// Panics when the expression does not evaluate to a boolean or NULL.
pub fn eval_bool(expr: &Expr, row: &[Value]) -> bool {
    match expr.eval(row) {
        Value::Bool(b) => b,
        Value::Null => false,
        other => panic!("predicate evaluated to non-boolean {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_storage::{parse_date, DataType, Schema};

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("s", DataType::Str),
            ("d", DataType::Date),
        ])
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(5),
            Value::Float(2.5),
            Value::str("hello world"),
            parse_date("1997-07-15"),
        ]
    }

    fn eval(e: Expr) -> Value {
        e.bind(&schema()).unwrap().eval(&row())
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval(Expr::col("a").eq(Expr::lit(5i64))), Value::Bool(true));
        assert_eq!(eval(Expr::col("a").ne(Expr::lit(5i64))), Value::Bool(false));
        assert_eq!(eval(Expr::col("a").lt(Expr::lit(6i64))), Value::Bool(true));
        assert_eq!(eval(Expr::col("a").ge(Expr::lit(5i64))), Value::Bool(true));
        assert_eq!(eval(Expr::col("b").gt(Expr::lit(2.4))), Value::Bool(true));
        // Cross numeric comparison.
        assert_eq!(eval(Expr::col("a").gt(Expr::lit(4.5))), Value::Bool(true));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(
            eval(Expr::lit(Value::Null).eq(Expr::lit(1i64))),
            Value::Null
        );
        assert_eq!(
            eval(Expr::lit(Value::Null).add(Expr::lit(1i64))),
            Value::Null
        );
        assert_eq!(eval(Expr::lit(Value::Null).is_null()), Value::Bool(true));
        assert_eq!(eval(Expr::col("a").is_null()), Value::Bool(false));
        // BETWEEN with NULL operand.
        assert_eq!(
            eval(Expr::lit(Value::Null).between(Expr::lit(1i64), Expr::lit(2i64))),
            Value::Null
        );
    }

    #[test]
    fn kleene_logic() {
        let t = || Expr::lit(true);
        let f = || Expr::lit(false);
        let n = || Expr::lit(Value::Null);
        assert_eq!(eval(t().and(n())), Value::Null);
        assert_eq!(eval(f().and(n())), Value::Bool(false));
        assert_eq!(eval(n().and(f())), Value::Bool(false));
        assert_eq!(eval(t().or(n())), Value::Bool(true));
        assert_eq!(eval(n().or(t())), Value::Bool(true));
        assert_eq!(eval(f().or(n())), Value::Null);
        assert_eq!(eval(n().not()), Value::Null);
        assert_eq!(eval(t().not()), Value::Bool(false));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval(Expr::col("a").add(Expr::lit(3i64))), Value::Int(8));
        assert_eq!(eval(Expr::col("a").mul(Expr::lit(2i64))), Value::Int(10));
        assert_eq!(
            eval(Expr::col("b").mul(Expr::lit(4i64))),
            Value::Float(10.0)
        );
        assert_eq!(eval(Expr::col("a").div(Expr::lit(0i64))), Value::Null);
        assert_eq!(eval(Expr::col("b").div(Expr::lit(0.0))), Value::Null);
        assert_eq!(
            eval(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::col("a"))
            }),
            Value::Int(-5)
        );
    }

    #[test]
    fn date_arithmetic_matches_paper_template() {
        // l_receiptdate BETWEEN '07/01/97' + 10 AND '09/30/97' + 10
        let pred = Expr::col("d").between(
            Expr::lit(parse_date("1997-07-01")).add(Expr::lit(10i64)),
            Expr::lit(parse_date("1997-09-30")).add(Expr::lit(10i64)),
        );
        assert_eq!(eval(pred), Value::Bool(true));
        let pred_out = Expr::col("d").between(
            Expr::lit(parse_date("1997-07-01")).add(Expr::lit(20i64)),
            Expr::lit(parse_date("1997-09-30")).add(Expr::lit(20i64)),
        );
        // 1997-07-15 < 1997-07-21, so out of range.
        assert_eq!(eval(pred_out), Value::Bool(false));
        // Date difference in days.
        assert_eq!(
            eval(Expr::col("d").sub(Expr::lit(parse_date("1997-07-01")))),
            Value::Int(14)
        );
    }

    #[test]
    fn like_and_in() {
        assert_eq!(eval(Expr::col("s").like("hello%")), Value::Bool(true));
        assert_eq!(eval(Expr::col("s").like("%world")), Value::Bool(true));
        assert_eq!(eval(Expr::col("s").like("%lo w%")), Value::Bool(true));
        assert_eq!(eval(Expr::col("s").like("hello")), Value::Bool(false));
        assert_eq!(
            eval(Expr::col("a").in_list(vec![Value::Int(1), Value::Int(5)])),
            Value::Bool(true)
        );
        assert_eq!(
            eval(Expr::col("a").in_list(vec![Value::Int(1), Value::Int(2)])),
            Value::Bool(false)
        );
        assert_eq!(
            eval(Expr::lit(Value::Null).in_list(vec![Value::Int(1)])),
            Value::Null
        );
    }

    #[test]
    fn eval_bool_treats_null_as_false() {
        let e = Expr::lit(Value::Null)
            .eq(Expr::lit(1i64))
            .bind(&schema())
            .unwrap();
        assert!(!eval_bool(&e, &row()));
        let t = Expr::col("a").eq(Expr::lit(5i64)).bind(&schema()).unwrap();
        assert!(eval_bool(&t, &row()));
    }

    #[test]
    #[should_panic(expected = "unbound column")]
    fn unbound_eval_panics() {
        Expr::col("a").eval(&row());
    }

    #[test]
    #[should_panic(expected = "LIKE on non-string")]
    fn like_on_int_panics() {
        eval(Expr::col("a").like("%"));
    }
}
