//! Scalar expressions and predicates.
//!
//! One of the paper's arguments for sampling-based estimation (§3.2,
//! point 3) is that it works for *almost any* predicate — arithmetic
//! expressions, substring matches — because the predicate is simply
//! evaluated against each sampled tuple.  This crate provides that shared
//! predicate language: a small expression tree with SQL three-valued logic,
//! evaluated identically against base-table rows (by the executor), sample
//! tuples (by the robust estimator), and histogram bucket boundaries (by the
//! baseline estimator, for the restricted shapes it supports).
//!
//! Expressions are built name-based ([`Expr::col`]) and *bound* to a schema
//! ([`Expr::bind`]) before evaluation, turning column references into
//! ordinals so the hot evaluation path does no string lookups.

#![warn(missing_docs)]

pub mod columnar;
pub mod eval;
pub mod like;
pub mod tree;

pub use columnar::{select, Candidates};
pub use eval::eval_bool;
pub use tree::{BinaryOp, Expr, ExprError, UnaryOp};
