//! SQL `LIKE` pattern matching with `%` and `_` wildcards.

/// Returns true when `text` matches the SQL LIKE `pattern`.
///
/// `%` matches any (possibly empty) substring; `_` matches exactly one
/// character.  Matching is byte-oriented, which is correct for the ASCII
/// identifiers (brands, containers, ship modes) produced by the data
/// generators; `_` counts bytes, not grapheme clusters.
///
/// Implemented with the standard two-pointer backtracking algorithm:
/// linear in `text.len()` for patterns with a single `%`, and O(n·m) worst
/// case, with no allocation.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p = pattern.as_bytes();
    let t = text.as_bytes();
    let (mut pi, mut ti) = (0usize, 0usize);
    // Position to restart from after a failed match past a '%'.
    let mut star: Option<(usize, usize)> = None;

    while ti < t.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Let the last '%' absorb one more character and retry.
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    // Only trailing '%'s may remain.
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
        assert!(!like_match("ab", "abc"));
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
    }

    #[test]
    fn percent_wildcard() {
        assert!(like_match("%", ""));
        assert!(like_match("%", "anything"));
        assert!(like_match("abc%", "abcdef"));
        assert!(like_match("%def", "abcdef"));
        assert!(like_match("%cd%", "abcdef"));
        assert!(like_match("a%f", "abcdef"));
        assert!(!like_match("a%g", "abcdef"));
        assert!(like_match("%%", "x"));
        assert!(like_match("a%", "a"));
    }

    #[test]
    fn underscore_wildcard() {
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "ac"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("___", "abc"));
        assert!(!like_match("___", "ab"));
    }

    #[test]
    fn combined_wildcards() {
        assert!(like_match("a_%c", "axyc"));
        assert!(!like_match("a_%c", "ac"));
        assert!(like_match("%B#__", "Brand B#12"));
        assert!(like_match("MED%BOX", "MED BOX"));
    }

    #[test]
    fn backtracking_stress() {
        // Patterns that defeat greedy matching without backtracking.
        assert!(like_match("%ab%ab", "abab"));
        assert!(like_match("%aab", "aaab"));
        assert!(!like_match("%aab%c", "aabb"));
        assert!(like_match("a%a%a", "aaa"));
        assert!(!like_match("a%a%a", "aa"));
    }
}
