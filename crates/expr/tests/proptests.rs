//! Property-based tests of the expression layer: the LIKE matcher against
//! a naive reference, constant folding against direct evaluation, and
//! range-recognition against predicate semantics.

use proptest::prelude::*;
use rqo_expr::{eval_bool, Expr};
use rqo_storage::{DataType, Schema, Value};

/// Naive exponential-time LIKE reference.
fn like_reference(pattern: &[u8], text: &[u8]) -> bool {
    match (pattern.first(), text.first()) {
        (None, None) => true,
        (Some(b'%'), _) => {
            like_reference(&pattern[1..], text)
                || (!text.is_empty() && like_reference(pattern, &text[1..]))
        }
        (Some(b'_'), Some(_)) => like_reference(&pattern[1..], &text[1..]),
        (Some(&p), Some(&t)) if p == t => like_reference(&pattern[1..], &text[1..]),
        _ => false,
    }
}

fn pattern_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![Just('%'), Just('_'), prop::char::range('a', 'd'),],
        0..8,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::char::range('a', 'd'), 0..10)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn like_matches_reference(pattern in pattern_strategy(), text in text_strategy()) {
        let schema = Schema::from_pairs(&[("s", DataType::Str)]);
        let expr = Expr::col("s").like(pattern.clone()).bind(&schema).unwrap();
        let row = vec![Value::str(text.as_str())];
        let got = eval_bool(&expr, &row);
        let expected = like_reference(pattern.as_bytes(), text.as_bytes());
        prop_assert_eq!(got, expected, "pattern {:?} text {:?}", pattern, text);
    }

    #[test]
    fn const_folding_matches_direct_eval(a in -1000i64..1000, b in -1000i64..1000) {
        // (a + b) * 2 - a, built as an expression over literals only.
        let e = Expr::lit(a)
            .add(Expr::lit(b))
            .mul(Expr::lit(2i64))
            .sub(Expr::lit(a));
        let folded = e.const_value().expect("column-free expression folds");
        prop_assert_eq!(folded, Value::Int((a + b) * 2 - a));
    }

    #[test]
    fn division_by_zero_never_folds(a in -1000i64..1000) {
        let e = Expr::lit(a).div(Expr::lit(0i64));
        prop_assert!(e.const_value().is_none());
    }

    #[test]
    fn recognized_ranges_agree_with_predicate_semantics(
        x in -100i64..100,
        lo in -100i64..100,
        len in 0i64..100,
        shift in -50i64..50,
    ) {
        // A BETWEEN with arithmetic bounds, the paper's template shape.
        let pred = Expr::col("x").between(
            Expr::lit(lo).add(Expr::lit(shift)),
            Expr::lit(lo + len).add(Expr::lit(shift)),
        );
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let bound = pred.bind(&schema).unwrap();
        let truth = eval_bool(&bound, &[Value::Int(x)]);

        let (col, range_lo, range_hi) = pred.as_column_range().expect("recognized");
        prop_assert_eq!(col, "x");
        let in_lo = match &range_lo {
            std::ops::Bound::Included(v) => x >= v.as_int(),
            std::ops::Bound::Excluded(v) => x > v.as_int(),
            std::ops::Bound::Unbounded => true,
        };
        let in_hi = match &range_hi {
            std::ops::Bound::Included(v) => x <= v.as_int(),
            std::ops::Bound::Excluded(v) => x < v.as_int(),
            std::ops::Bound::Unbounded => true,
        };
        prop_assert_eq!(truth, in_lo && in_hi);
    }

    #[test]
    fn comparison_ranges_agree_with_semantics(x in -100i64..100, c in -100i64..100, op in 0u8..5) {
        let col = Expr::col("x");
        let pred = match op {
            0 => col.eq(Expr::lit(c)),
            1 => col.lt(Expr::lit(c)),
            2 => col.le(Expr::lit(c)),
            3 => col.gt(Expr::lit(c)),
            _ => col.ge(Expr::lit(c)),
        };
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let truth = eval_bool(&pred.bind(&schema).unwrap(), &[Value::Int(x)]);
        let (_, lo, hi) = pred.as_column_range().expect("comparisons are ranges");
        let in_lo = match &lo {
            std::ops::Bound::Included(v) => x >= v.as_int(),
            std::ops::Bound::Excluded(v) => x > v.as_int(),
            std::ops::Bound::Unbounded => true,
        };
        let in_hi = match &hi {
            std::ops::Bound::Included(v) => x <= v.as_int(),
            std::ops::Bound::Excluded(v) => x < v.as_int(),
            std::ops::Bound::Unbounded => true,
        };
        prop_assert_eq!(truth, in_lo && in_hi);
    }

    #[test]
    fn conjuncts_preserve_semantics(
        vals in prop::collection::vec(-20i64..20, 3),
        bounds in prop::collection::vec((-20i64..20, 0i64..20), 3),
    ) {
        // AND of three range predicates == conjunction of the parts.
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
        ]);
        let names = ["a", "b", "c"];
        let parts: Vec<Expr> = bounds
            .iter()
            .zip(names)
            .map(|(&(lo, len), n)| Expr::col(n).between(Expr::lit(lo), Expr::lit(lo + len)))
            .collect();
        let whole = Expr::conjunction(parts.clone()).unwrap().bind(&schema).unwrap();
        let row: Vec<Value> = vals.iter().map(|&v| Value::Int(v)).collect();
        let whole_result = eval_bool(&whole, &row);
        let parts_result = parts
            .iter()
            .all(|p| eval_bool(&p.bind(&schema).unwrap(), &row));
        prop_assert_eq!(whole_result, parts_result);
        // And the flattening is lossless.
        let rebuilt = Expr::conjunction(parts).unwrap();
        prop_assert_eq!(rebuilt.conjuncts().len(), 3);
    }
}
