//! Oracle test for [`rqo_expr::like_match`] against an independent
//! implementation: the LIKE pattern is translated to the regex it denotes
//! (`%` → `.*`, `_` → `.`, everything else literal) and matched with a
//! textbook NFA state-set simulation, O(pattern · text) with no
//! backtracking.  The production matcher is a two-pointer backtracker —
//! a structurally different algorithm — so agreement on random inputs is
//! strong evidence both are the LIKE semantics, not each other's bugs.

use proptest::prelude::*;
use rqo_expr::like::like_match;

/// One element of the translated regex: a literal byte, `.` (any single
/// byte), or `.*` (any run of bytes, possibly empty).
#[derive(Clone, Copy, PartialEq)]
enum Tok {
    Literal(u8),
    AnyByte,
    AnyRun,
}

/// The regex translation of a LIKE pattern: `%` → `.*`, `_` → `.`,
/// anything else matches itself.  LIKE has no escape syntax here, so the
/// translation is char-by-char.
fn translate(pattern: &str) -> Vec<Tok> {
    pattern
        .bytes()
        .map(|b| match b {
            b'%' => Tok::AnyRun,
            b'_' => Tok::AnyByte,
            lit => Tok::Literal(lit),
        })
        .collect()
}

/// Thompson-style NFA simulation over the translated pattern.  `states`
/// holds the set of pattern positions reachable after consuming the text
/// so far; `.*` adds an epsilon edge from position i to i+1.
fn regex_match(tokens: &[Tok], text: &[u8]) -> bool {
    let n = tokens.len();
    // Epsilon closure from a position: skip over any prefix of `.*`s.
    let close = |start: usize, states: &mut Vec<bool>| {
        let mut i = start;
        loop {
            if i > n || states[i] {
                break;
            }
            states[i] = true;
            if i < n && tokens[i] == Tok::AnyRun {
                i += 1;
            } else {
                break;
            }
        }
    };

    let mut states = vec![false; n + 1];
    close(0, &mut states);
    for &byte in text {
        let mut next = vec![false; n + 1];
        for i in 0..n {
            if !states[i] {
                continue;
            }
            match tokens[i] {
                Tok::Literal(lit) if lit == byte => close(i + 1, &mut next),
                Tok::AnyByte => close(i + 1, &mut next),
                // `.*` consumes the byte and stays put.
                Tok::AnyRun => close(i, &mut next),
                _ => {}
            }
        }
        states = next;
    }
    states[n]
}

fn like_oracle(pattern: &str, text: &str) -> bool {
    regex_match(&translate(pattern), text.as_bytes())
}

/// Patterns over a tiny alphabet plus both wildcards: small domains make
/// collisions (and therefore interesting matches) common.
fn pattern_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![Just('%'), Just('%'), Just('_'), prop::char::range('a', 'c'),],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::char::range('a', 'c'), 0..16)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn like_match_agrees_with_regex_oracle(
        pattern in pattern_strategy(),
        text in text_strategy(),
    ) {
        prop_assert_eq!(
            like_match(&pattern, &text),
            like_oracle(&pattern, &text),
            "pattern {:?} text {:?}",
            pattern,
            text
        );
    }

    /// Adversarial shape for the backtracker: many `%`s separating runs
    /// that overlap each other, e.g. `%aa%aab%` against `aaab…`.
    #[test]
    fn multi_percent_backtracking_agrees(
        runs in prop::collection::vec(
            prop::collection::vec(prop::char::range('a', 'b'), 0..4),
            1..5,
        ),
        text in prop::collection::vec(prop::char::range('a', 'b'), 0..20),
    ) {
        let pattern: String = runs
            .iter()
            .map(|r| r.iter().collect::<String>())
            .collect::<Vec<_>>()
            .join("%");
        let text: String = text.into_iter().collect();
        prop_assert_eq!(
            like_match(&pattern, &text),
            like_oracle(&pattern, &text),
            "pattern {:?} text {:?}",
            pattern,
            text
        );
    }
}

#[test]
fn multi_percent_backtracking_pinned_cases() {
    // Greedy matching without backtracking fails these: the first `%`
    // must *not* absorb as much as possible.
    for (pattern, text, want) in [
        ("%ab%ab", "abab", true),
        ("%aab", "aaab", true),
        ("%aab%b", "aabb", true),
        ("%aab%c", "aabb", false),
        ("a%a%a", "aaa", true),
        ("a%a%a", "aa", false),
        ("%a%b%a%", "xaybza", true),
        ("%ba%ba%", "bababa", true),
        ("%bab%bab", "babab", false),
    ] {
        assert_eq!(like_match(pattern, text), want, "like({pattern}, {text})");
        assert_eq!(
            like_oracle(pattern, text),
            want,
            "oracle({pattern}, {text})"
        );
    }
}

#[test]
fn underscore_is_byte_oriented_on_non_ascii() {
    // Documented semantics: `_` matches exactly one *byte*.  'é' encodes
    // as two bytes in UTF-8, so it takes two `_`s — this is the ASCII
    // fast path trade-off, and the oracle (also byte-oriented) agrees.
    assert!(!like_match("_", "é"));
    assert!(like_match("__", "é"));
    assert!(!like_oracle("_", "é"));
    assert!(like_oracle("__", "é"));

    // `%` is byte-run based and therefore still correct on any UTF-8.
    assert!(like_match("caf%", "café"));
    assert!(like_match("%é", "café"));
    assert!(like_oracle("%é", "café"));
}
