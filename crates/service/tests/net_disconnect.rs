//! Client-disconnect propagation over a real socket: dropping the TCP
//! connection while a query is executing must cancel it through the
//! existing [`QueryToken`] path — promptly, with the engine's no-trace
//! hygiene (no plan-cache insert, no feedback observations), and with
//! the service counters balancing afterwards.  The same long-query
//! machinery also pins the per-tenant admission quota, which needs a
//! genuinely in-flight query to be observable.
//!
//! The long query is a three-way join sized to run for seconds in
//! debug builds (hundreds of milliseconds in release); the test never
//! sleeps a fixed "long enough" interval before disconnecting — it
//! polls the service's `admitted` counter so the cancel always lands
//! mid-execution.

use std::net::Shutdown;
use std::time::{Duration, Instant};

use rqo_datagen::{TpchConfig, TpchData};
use rqo_exec::AggExpr;
use rqo_optimizer::Query;
use rqo_service::net::{ClientError, NetClient, NetServer, NetServerConfig};
use rqo_service::proto::{write_frame, ErrorCode, Request, RunMode};
use rqo_service::{Engine, QueryService, ServiceConfig, ServiceStats};

/// Big enough that the join below runs for seconds in debug mode.
const SCALE: f64 = 0.02;

fn server_with(config: NetServerConfig) -> NetServer {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: SCALE,
        seed: 7,
    });
    let service = QueryService::new(Engine::new(data.into_catalog()), ServiceConfig::default());
    NetServer::bind(service, "127.0.0.1:0", config).expect("bind loopback")
}

fn long_query() -> Query {
    Query::over(&["lineitem", "orders", "part"]).aggregate(AggExpr::count_star("n"))
}

fn short_query() -> Query {
    Query::over(&["part"]).aggregate(AggExpr::count_star("n"))
}

fn poll_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn assert_quiescent_and_balanced(stats: ServiceStats) {
    assert!(stats.slots_balanced(), "execution slot leaked: {stats}");
    assert_eq!(stats.panicked, 0, "query panicked: {stats}");
}

#[test]
fn disconnect_mid_query_cancels_via_token_with_no_trace() {
    let server = server_with(NetServerConfig::default());
    let service = server.service().clone();
    let engine = service.engine().clone();

    // Fire the query without waiting for its reply, then watch it get
    // admitted.
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let req = Request::Run {
        id: 1,
        mode: RunMode::Run,
        deadline_ms: 0,
        query: long_query(),
    };
    let mut frame = Vec::new();
    write_frame(&mut frame, &req.encode()).unwrap();
    client.send_raw(&frame).expect("send run");
    poll_until("query admitted", || service.stats().admitted == 1);

    // Hard disconnect while the join is grinding.
    client.stream().shutdown(Shutdown::Both).expect("shutdown");
    drop(client);

    // The reader notices EOF, cancels the token, and the query stops at
    // its next morsel boundary — long before it could complete.
    poll_until("cancellation", || service.stats().cancelled == 1);
    poll_until("connection drained", || server.stats().active == 0);

    let stats = service.stats();
    assert_eq!(stats.completed, 0, "query must not have finished: {stats}");
    assert_quiescent_and_balanced(stats);
    assert_eq!(server.stats().disconnect_cancels, 1, "{}", server.stats());

    // No-trace hygiene: the cancelled run published nothing.
    assert_eq!(
        engine.cache_stats().entries,
        0,
        "cancelled query inserted a plan"
    );
    assert!(
        engine.feedback().snapshot().is_empty(),
        "cancelled query recorded feedback"
    );

    // And the engine is unharmed: the same query completes over a fresh
    // connection with the right answer.
    let mut retry = NetClient::connect(server.local_addr()).expect("reconnect");
    let reply = retry.run(&short_query()).expect("server still serves");
    assert_eq!(reply.rows.len(), 1);
}

#[test]
fn tenant_quota_bounds_in_flight_queries_per_tenant() {
    let config = NetServerConfig::default().with_tenant_quota(1);
    let server = server_with(config);
    let service = server.service().clone();
    let addr = server.local_addr();

    // Tenant "acme" occupies its whole quota with one long query...
    let mut first = NetClient::connect(addr).expect("connect first");
    first.hello("acme").expect("hello");
    let req = Request::Run {
        id: 1,
        mode: RunMode::Run,
        deadline_ms: 0,
        query: long_query(),
    };
    let mut frame = Vec::new();
    write_frame(&mut frame, &req.encode()).unwrap();
    first.send_raw(&frame).expect("send run");
    poll_until("first query admitted", || service.stats().admitted == 1);

    // ... so a second "acme" connection is refused before admission ...
    let mut second = NetClient::connect(addr).expect("connect second");
    second.hello("acme").expect("hello");
    match second.run(&short_query()) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::TenantQuota),
        other => panic!("expected TenantQuota, got {other:?}"),
    }
    assert_eq!(server.stats().tenant_rejections, 1);

    // ... while a different tenant sails through on the same service.
    let mut other = NetClient::connect(addr).expect("connect other");
    other.hello("globex").expect("hello");
    let reply = other.run(&short_query()).expect("other tenant unaffected");
    assert_eq!(reply.rows.len(), 1);

    // Ending the first query (via disconnect-cancel) releases the
    // quota slot for the tenant.
    first.stream().shutdown(Shutdown::Both).expect("shutdown");
    drop(first);
    poll_until("first query cancelled", || service.stats().cancelled == 1);
    let reply = second.run(&short_query()).expect("quota slot released");
    assert_eq!(reply.rows.len(), 1);

    assert_quiescent_and_balanced(service.stats());
}
