//! Wire-protocol properties.
//!
//! 1. **Roundtrip:** `decode(encode(m)) == m` for arbitrary requests and
//!    responses, including deeply structured queries — the wire format
//!    loses nothing.
//! 2. **Never panics:** the decoder survives arbitrary byte soup —
//!    truncated, oversized, and garbage frames all come back as typed
//!    [`ProtoError`]s, never as panics or bad allocations.
//!
//! The vendored proptest subset has no recursive strategies, so
//! structured values are *derived* from drawn byte scripts: the script
//! is the entropy, plain code turns it into a `Query`/`Response`
//! deterministically.

use proptest::prelude::*;
use rqo_core::{ConfidenceThreshold, PlanSelection};
use rqo_exec::{AggExpr, AggFunc};
use rqo_expr::{BinaryOp, Expr, UnaryOp};
use rqo_optimizer::Query;
use rqo_service::proto::{
    read_frame, write_frame, FrameReadError, ProtoError, Request, Response, RunMode, MAX_FRAME_LEN,
};
use rqo_storage::Value;

/// A draw source over a finite byte script: deterministic, total (runs
/// dry into zeros), and cheap.
struct Script<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Script<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Script { bytes, pos: 0 }
    }
    fn byte(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }
    fn small(&mut self, bound: u8) -> u8 {
        self.byte() % bound.max(1)
    }
    fn i64(&mut self) -> i64 {
        let mut v = [0u8; 8];
        for slot in &mut v {
            *slot = self.byte();
        }
        i64::from_le_bytes(v)
    }
    fn string(&mut self) -> String {
        let len = self.small(9) as usize;
        (0..len)
            .map(|_| char::from(b'a' + self.small(26)))
            .collect()
    }
}

fn value_from(s: &mut Script) -> Value {
    match s.small(6) {
        0 => Value::Null,
        1 => Value::Int(s.i64()),
        2 => Value::Float(f64::from_bits(s.i64() as u64 & 0x7FEF_FFFF_FFFF_FFFF)),
        3 => Value::Date(s.i64() as i32),
        4 => Value::str(s.string()),
        _ => Value::Bool(s.byte() & 1 == 1),
    }
}

fn expr_from(s: &mut Script, depth: usize) -> Expr {
    // Leaves become more likely as depth grows; hard floor at 8 so the
    // tree stays inside the decoder's depth limit with margin.
    let leafy = depth >= 8 || s.small(4) == 0;
    if leafy {
        return match s.small(3) {
            0 => Expr::Col(s.string()),
            1 => Expr::ColIdx(s.small(16) as usize, s.string()),
            _ => Expr::Lit(value_from(s)),
        };
    }
    match s.small(5) {
        0 => Expr::Binary {
            op: match s.small(12) {
                0 => BinaryOp::Eq,
                1 => BinaryOp::Ne,
                2 => BinaryOp::Lt,
                3 => BinaryOp::Le,
                4 => BinaryOp::Gt,
                5 => BinaryOp::Ge,
                6 => BinaryOp::And,
                7 => BinaryOp::Or,
                8 => BinaryOp::Add,
                9 => BinaryOp::Sub,
                10 => BinaryOp::Mul,
                _ => BinaryOp::Div,
            },
            left: Box::new(expr_from(s, depth + 1)),
            right: Box::new(expr_from(s, depth + 1)),
        },
        1 => Expr::Unary {
            op: match s.small(3) {
                0 => UnaryOp::Not,
                1 => UnaryOp::Neg,
                _ => UnaryOp::IsNull,
            },
            expr: Box::new(expr_from(s, depth + 1)),
        },
        2 => Expr::Between {
            expr: Box::new(expr_from(s, depth + 1)),
            lo: Box::new(expr_from(s, depth + 1)),
            hi: Box::new(expr_from(s, depth + 1)),
        },
        3 => Expr::Like {
            expr: Box::new(expr_from(s, depth + 1)),
            pattern: s.string(),
        },
        _ => Expr::InList {
            expr: Box::new(expr_from(s, depth + 1)),
            list: {
                let n = s.small(4) as usize;
                (0..n).map(|_| value_from(s)).collect()
            },
        },
    }
}

fn query_from(s: &mut Script) -> Query {
    let n_tables = 1 + s.small(3) as usize;
    let tables: Vec<String> = (0..n_tables)
        .map(|i| format!("t{i}_{}", s.string()))
        .collect();
    let n_preds = s.small(3) as usize;
    let predicates = (0..n_preds)
        .map(|_| {
            let t = tables[s.small(n_tables as u8) as usize].clone();
            (t, expr_from(s, 0))
        })
        .collect();
    let n_group = s.small(3) as usize;
    let group_by = (0..n_group).map(|_| s.string()).collect();
    let n_aggs = s.small(3) as usize;
    let aggregates = (0..n_aggs)
        .map(|_| {
            let func = match s.small(5) {
                0 => AggFunc::Sum,
                1 => AggFunc::Count,
                2 => AggFunc::Avg,
                3 => AggFunc::Min,
                _ => AggFunc::Max,
            };
            let column = if func == AggFunc::Count && s.byte() & 1 == 0 {
                None
            } else {
                Some(s.string())
            };
            AggExpr {
                func,
                column,
                alias: s.string(),
            }
        })
        .collect();
    let hint = match s.small(3) {
        0 => None,
        _ => Some(ConfidenceThreshold::new((1.0 + s.small(98) as f64) / 100.0)),
    };
    let selection = match s.small(3) {
        0 => None,
        1 => Some(PlanSelection::Quantile),
        _ => Some(PlanSelection::ExpectedPenalty),
    };
    Query {
        tables,
        predicates,
        group_by,
        aggregates,
        hint,
        selection,
    }
}

fn request_from(s: &mut Script) -> Request {
    match s.small(4) {
        0 => Request::Hello { tenant: s.string() },
        1 => Request::Ping {
            nonce: s.i64() as u64,
        },
        2 => Request::Insert {
            id: s.i64() as u64,
            // Decode rejects empty table names, so force a prefix.
            table: format!("t{}", s.string()),
            rows: {
                let n = s.small(4) as usize;
                let width = s.small(4) as usize;
                (0..n)
                    .map(|_| (0..width).map(|_| value_from(s)).collect())
                    .collect()
            },
        },
        _ => Request::Run {
            id: s.i64() as u64,
            mode: if s.byte() & 1 == 0 {
                RunMode::Run
            } else {
                RunMode::Adaptive
            },
            deadline_ms: (s.i64() as u64) % 100_000,
            query: query_from(s),
        },
    }
}

fn response_from(s: &mut Script) -> Response {
    match s.small(5) {
        0 => Response::Batch {
            id: s.i64() as u64,
            rows: {
                let n = s.small(4) as usize;
                let width = s.small(4) as usize;
                (0..n)
                    .map(|_| (0..width).map(|_| value_from(s)).collect())
                    .collect()
            },
        },
        1 => Response::Done {
            id: s.i64() as u64,
            columns: {
                let n = s.small(4) as usize;
                (0..n).map(|_| s.string()).collect()
            },
            total_rows: s.i64() as u64,
            simulated_seconds: s.small(100) as f64 / 7.0,
            estimated_seconds: s.small(100) as f64 / 3.0,
            replans: s.small(4) as u64,
        },
        2 => Response::Error {
            id: s.i64() as u64,
            code: rqo_service::proto::ErrorCode::Protocol,
            message: s.string(),
        },
        3 => Response::InsertOk {
            id: s.i64() as u64,
            rows_inserted: s.small(100) as u64,
            table_rows: s.i64() as u64,
        },
        _ => Response::Pong {
            nonce: s.i64() as u64,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Requests roundtrip bit-exactly, including full query specs.
    #[test]
    fn request_roundtrips(script in proptest::collection::vec(any::<u8>(), 0..256)) {
        let req = request_from(&mut Script::new(&script));
        let body = req.encode();
        let back = Request::decode(&body).expect("own encoding decodes");
        prop_assert_eq!(back, req);
    }

    /// Responses roundtrip bit-exactly.
    #[test]
    fn response_roundtrips(script in proptest::collection::vec(any::<u8>(), 0..256)) {
        let resp = response_from(&mut Script::new(&script));
        let body = resp.encode();
        let back = Response::decode(&body).expect("own encoding decodes");
        prop_assert_eq!(back, resp);
    }

    /// Arbitrary byte soup never panics the decoders: every outcome is
    /// `Ok` or a typed `ProtoError`.
    #[test]
    fn garbage_never_panics_decoders(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&body);
        let _ = Response::decode(&body);
    }

    /// Truncating a valid frame at every prefix yields a typed error,
    /// not a panic (or, for a frame-boundary cut, a clean EOF).
    #[test]
    fn truncated_frames_are_typed(script in proptest::collection::vec(any::<u8>(), 0..256),
                                  cut_seed in any::<u16>()) {
        let req = request_from(&mut Script::new(&script));
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let cut = cut_seed as usize % wire.len();
        let mut cursor = std::io::Cursor::new(&wire[..cut]);
        match read_frame(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at the boundary"),
            Ok(Some(body)) => {
                // The length prefix survived and the cut happened to
                // cover the whole body — then it must decode.
                prop_assert_eq!(Request::decode(&body).unwrap(), req);
            }
            Err(FrameReadError::Proto(ProtoError::Truncated)) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// Corrupting a single byte of a valid frame never panics the frame
    /// reader or the decoder.
    #[test]
    fn bit_flips_never_panic(script in proptest::collection::vec(any::<u8>(), 0..256),
                             at_seed in any::<u16>(), xor in 1u8..=255) {
        let req = request_from(&mut Script::new(&script));
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let at = at_seed as usize % wire.len();
        wire[at] ^= xor;
        let mut cursor = std::io::Cursor::new(wire.as_slice());
        if let Ok(Some(body)) = read_frame(&mut cursor) {
            let _ = Request::decode(&body);
        }
    }
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    // A 4 GiB length claim must come back as Oversized without the
    // reader ever trying to allocate the buffer.
    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    wire.extend_from_slice(&[0u8; 64]);
    let mut cursor = std::io::Cursor::new(wire);
    match read_frame(&mut cursor) {
        Err(FrameReadError::Proto(ProtoError::Oversized(n))) => {
            assert!(n > MAX_FRAME_LEN);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}
