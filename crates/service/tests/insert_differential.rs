//! Streamed-vs-one-shot differential suite for the ingest path.
//!
//! A table grown by [`Engine::insert_rows`] is semantically the *same
//! relation* as its one-shot twin built from the identical row stream:
//! the storage layer reproduces the exact per-partition concatenation a
//! one-shot build would emit, appends rebuild (not drop) cached
//! indexes, and a statistics refresh over bit-identical catalogs draws
//! bit-identical synopses.  So after ingest plus a same-seed refresh,
//! query results **and** annotated `EXPLAIN ANALYZE` trees must be
//! bit-identical between the two engines — at 1, 2, and 8 worker
//! threads, including statically pruned partitioned scans.
//!
//! A second test pins the scoped-invalidation contract: ingest into one
//! table advances only that table's feedback epoch and evicts only the
//! cached plans reading it, warm plans for untouched tables keep
//! hitting, and streaming sketches exist exactly for ingest-touched
//! tables.

use rqo_exec::{AggExpr, ExecOptions};
use rqo_expr::Expr;
use rqo_optimizer::Query;
use rqo_service::Engine;
use rqo_storage::{
    Catalog, CostParams, DataType, PartitionSpec, PartitionedTableBuilder, Schema, TableBuilder,
    Value,
};

const PARTS: i64 = 4;
const N: i64 = 4_000;
const SEED: u64 = 11;

fn t_schema() -> Schema {
    Schema::from_pairs(&[
        ("x", DataType::Int),
        ("k", DataType::Int),
        ("f", DataType::Float),
    ])
}

fn t_row(i: i64) -> Vec<Value> {
    vec![
        Value::Int(i),
        Value::Int(i * 3 % 17),
        Value::Float((i * 7 % 50) as f64),
    ]
}

/// Range partitioning over the *full* domain `[0, N)`, so the streamed
/// engine (which starts with a prefix of the rows) routes late arrivals
/// into the same partitions the one-shot build uses.
fn t_spec() -> PartitionSpec {
    PartitionSpec::Range {
        column: "x".into(),
        bounds: (1..PARTS).map(|q| Value::Int(q * N / PARTS)).collect(),
    }
}

/// A catalog holding the first `upto` rows of `t` plus the full outer
/// table `u(k, w)`.
fn catalog_with(upto: i64) -> Catalog {
    let mut part_b = PartitionedTableBuilder::new("t", t_schema(), t_spec());
    for i in 0..upto {
        part_b.push_row(&t_row(i));
    }
    let (table, layout) = part_b.finish();
    let mut cat = Catalog::new();
    cat.add_partitioned_table(table, layout).unwrap();

    // A dimension table keyed by `k` (unique), so `t.k → u.k` is a
    // declarable FK edge and t ⋈ u enters the optimizer's join graph.
    let mut b = TableBuilder::new(
        "u",
        Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)]),
        17,
    );
    for i in 0..17i64 {
        b.push_row(&[Value::Int(i), Value::Int(i * 5 % 23)]);
    }
    cat.add_table(b.finish()).unwrap();
    cat.add_foreign_key("t", "k", "u", "k").unwrap();
    cat
}

fn engine_over(cat: Catalog) -> Engine {
    Engine::with_options(cat, CostParams::default(), 256, SEED)
}

/// The one-shot twin: every row present at build time.
fn one_shot() -> Engine {
    engine_over(catalog_with(N))
}

/// The streamed twin: half the rows at build time, the rest ingested in
/// three uneven batches, then a same-seed statistics refresh (the
/// `UPDATE STATISTICS` a steward would run after bulk ingest).  Because
/// the streamed catalog is bit-identical to the one-shot catalog, the
/// refresh draws bit-identical synopses — everything downstream (plans,
/// estimates, results) must follow.
fn streamed() -> Engine {
    let mut engine = engine_over(catalog_with(N / 2));
    for (lo, hi) in [
        (N / 2, N / 2 + 700),
        (N / 2 + 700, N / 2 + 701),
        (N / 2 + 701, N),
    ] {
        let batch: Vec<Vec<Value>> = (lo..hi).map(t_row).collect();
        let summary = engine.insert_rows("t", &batch).expect("ingest");
        assert_eq!(summary.rows_inserted, (hi - lo) as usize);
    }
    assert_eq!(
        engine.catalog().table("t").unwrap().num_rows(),
        N as usize,
        "streamed engine reached the full row count"
    );
    engine.refresh_statistics(SEED);
    engine
}

/// The workload: a statically prunable window (one of four partitions
/// survives), a full-scan GROUP BY, and a join with grouping — scans,
/// pruning, aggregation, and joins all cross the differential.
fn workload() -> Vec<Query> {
    vec![
        Query::over(&["t"])
            .filter("t", Expr::col("x").lt(Expr::lit(N / PARTS)))
            .aggregate(AggExpr::sum("f", "total"))
            .aggregate(AggExpr::count_star("n")),
        Query::over(&["t"])
            .group(&["k"])
            .aggregate(AggExpr::count_star("n"))
            .aggregate(AggExpr::min("x", "first_x")),
        Query::over(&["t", "u"])
            .filter("u", Expr::col("w").lt(Expr::lit(16i64)))
            .group(&["w"])
            .aggregate(AggExpr::sum("f", "total")),
    ]
}

#[test]
fn streamed_ingest_matches_one_shot_build_bit_for_bit() {
    let one = one_shot();
    let two = streamed();

    for threads in [1usize, 2, 8] {
        let opts = ExecOptions::with_threads(threads);
        for (qi, query) in workload().iter().enumerate() {
            // `analyze_quiet` is side-effect-free, so each comparison is
            // independent of the others and of the thread sweep.
            let a = one.analyze_quiet(query, &opts).expect("one-shot run");
            let b = two.analyze_quiet(query, &opts).expect("streamed run");

            assert_eq!(
                a.outcome.rows, b.outcome.rows,
                "rows diverged (query {qi}, {threads} thread(s))"
            );
            assert_eq!(a.outcome.columns, b.outcome.columns, "columns (query {qi})");
            assert_eq!(
                a.outcome.simulated_seconds.to_bits(),
                b.outcome.simulated_seconds.to_bits(),
                "simulated cost diverged (query {qi}, {threads} thread(s))"
            );
            assert_eq!(
                a.outcome.estimated_seconds.to_bits(),
                b.outcome.estimated_seconds.to_bits(),
                "estimate diverged (query {qi}, {threads} thread(s))"
            );
            assert_eq!(
                a.render(),
                b.render(),
                "EXPLAIN ANALYZE trees diverged (query {qi}, {threads} thread(s))"
            );
        }

        // The window query's scan was statically pruned to one of the
        // four partitions — on both layouts, which only holds because
        // appends keep per-partition min/max exact.
        let pruned = two
            .analyze_quiet(&workload()[0], &opts)
            .expect("pruned run")
            .render();
        assert!(
            pruned.contains("PartitionedScan t [1/4 parts]"),
            "expected a pruned partitioned scan, got:\n{pruned}"
        );
    }
}

#[test]
fn ingest_invalidation_is_scoped_and_sketches_are_lazy() {
    let engine = one_shot();
    let opts = ExecOptions::with_threads(1);
    let q_t = workload().remove(0);
    let q_u = Query::over(&["u"]).aggregate(AggExpr::count_star("n"));

    // Warm the cache: one miss each, then one hit each.
    engine.run_opts(&q_t, &opts).expect("run t");
    engine.run_opts(&q_u, &opts).expect("run u");
    engine.run_opts(&q_t, &opts).expect("run t warm");
    engine.run_opts(&q_u, &opts).expect("run u warm");
    let warm = engine.cache_stats();
    assert_eq!((warm.hits, warm.misses), (2, 2), "{warm}");

    // Sketches are lazy: no table has streaming statistics before
    // ingest touches it.
    assert!(engine.sketches_for("t").is_none());
    assert!(engine.sketches_for("u").is_none());

    // Ingest into `t` only.
    let batch: Vec<Vec<Value>> = (N..N + 50).map(t_row).collect();
    let summary = engine.insert_rows("t", &batch).expect("ingest");
    assert_eq!(summary.rows_inserted, 50);
    assert_eq!(summary.table_rows, (N + 50) as usize);
    // Every new x lands past the last bound — exactly one partition.
    assert_eq!(summary.partitions_touched, vec![PARTS as usize - 1]);

    // Sketch lifecycle: `t` now has streaming statistics, `u` still
    // does not (so its estimation path is byte-identical to pre-ingest).
    let sketches = engine.sketches_for("t").expect("ingest seeded sketches");
    assert!(engine.sketches_for("u").is_none());
    let x = sketches.column_index("x").unwrap();
    let distinct_x = sketches.column_distinct(x);
    let exact = (N + 50) as f64;
    assert!(
        (distinct_x - exact).abs() / exact < 0.05,
        "merged sketch tracks ingest: {distinct_x} vs {exact}"
    );

    // Scoped invalidation: the warm plan over `u` survives (hit), the
    // plan over `t` was evicted and re-planned (miss) — and now sees
    // the new rows.
    let before = engine.run_opts(&q_u, &opts).expect("run u after ingest");
    assert_eq!(before.rows[0][0], Value::Int(17));
    let t_out = engine.run_opts(&q_t, &opts).expect("run t after ingest");
    assert_eq!(
        t_out.rows[0][1],
        Value::Int(N / PARTS),
        "window count unchanged (new rows land outside the window)"
    );
    let after = engine.cache_stats();
    assert_eq!(
        (after.hits - warm.hits, after.misses - warm.misses),
        (1, 1),
        "u hit, t re-planned: {after}"
    );

    // An empty batch is a no-op: nothing invalidated, both plans hit.
    let noop = engine.insert_rows("t", &[]).expect("empty batch");
    assert_eq!(noop.rows_inserted, 0);
    assert_eq!(noop.table_rows, (N + 50) as usize);
    engine.run_opts(&q_t, &opts).expect("run t after no-op");
    engine.run_opts(&q_u, &opts).expect("run u after no-op");
    let still = engine.cache_stats();
    assert_eq!(
        (still.hits - after.hits, still.misses - after.misses),
        (2, 0),
        "no-op batches invalidate nothing: {still}"
    );
}
