//! Property-based cancellation hygiene: a query cancelled at an
//! arbitrary poll boundary must leave **no trace** — no partial rows, no
//! plan-cache entry, no feedback observations — and a subsequent
//! un-cancelled run on the same engine must be bit-identical to a run on
//! a pristine engine.
//!
//! `QueryToken::cancel_after_polls(k)` makes the cut point deterministic:
//! the token fires at the k-th cooperative checkpoint (operator entry or
//! morsel boundary), so each proptest case pins one exact interruption
//! point rather than a race.

use proptest::prelude::*;
use rqo_core::{QueryToken, StopReason};
use rqo_datagen::workload::{exp1_lineitem_predicate, exp2_part_predicate};
use rqo_datagen::{TpchConfig, TpchData};
use rqo_exec::AggExpr;
use rqo_optimizer::Query;
use rqo_service::Engine;

fn engine() -> Engine {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.001,
        seed: 7,
    });
    Engine::new(data.into_catalog())
}

/// The query pool: single-table windows (cheap, few checkpoints) and a
/// three-way join (many operators, many checkpoints).
fn query(kind: usize, param: i64) -> Query {
    match kind {
        0 => Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(param))
            .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
            .aggregate(AggExpr::count_star("n")),
        1 => Query::over(&["lineitem", "orders"]).aggregate(AggExpr::count_star("n")),
        _ => Query::over(&["lineitem", "orders", "part"])
            .filter("part", exp2_part_predicate(150 + param))
            .aggregate(AggExpr::count_star("n")),
    }
}

/// Runs `q` on `e` through the chosen entry point, reduced to the
/// comparable core: result rows and tracked cost.
fn run(
    e: &Engine,
    q: &Query,
    method: usize,
    token: Option<QueryToken>,
) -> Result<(Vec<Vec<rqo_storage::Value>>, f64), StopReason> {
    let opts = e.query_exec_options(token, None);
    match method {
        0 => e.run_opts(q, &opts).map(|o| (o.rows, o.simulated_seconds)),
        1 => e
            .explain_analyze_opts(q, &opts)
            .map(|a| (a.outcome.rows, a.outcome.simulated_seconds)),
        _ => e
            .run_adaptive_opts(q, &opts)
            .map(|a| (a.outcome.rows, a.outcome.simulated_seconds)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cancel at the k-th checkpoint, then prove the engine state is
    /// byte-identical to never having run: empty feedback snapshot, empty
    /// plan cache, and a follow-up run that matches a pristine engine
    /// bit-for-bit.
    #[test]
    fn cancellation_leaves_no_trace(
        kind in 0usize..3,
        method in 0usize..3,
        param in 0i64..90,
        polls in 0u64..60,
    ) {
        let e = engine();
        let q = query(kind, param);
        let token = QueryToken::cancel_after_polls(polls);
        let result = run(&e, &q, method, Some(token));

        // The pristine reference: the same entry point, never cancelled,
        // on a fresh identical engine.
        let (ref_rows, ref_seconds) =
            run(&engine(), &q, method, None).expect("no token, cannot stop");

        match result {
            Err(reason) => {
                prop_assert_eq!(reason, StopReason::Cancelled);
                // No feedback observation was published.
                prop_assert!(e.feedback().snapshot().is_empty(),
                    "cancelled {method}/{kind} published feedback: {:?}", e.feedback().snapshot());
                // No plan entered the cache, and nothing was evicted.
                let cache = e.cache_stats();
                prop_assert_eq!(cache.entries, 0);
                prop_assert_eq!(cache.drift_evictions, 0);
                prop_assert!(e.plan_cache().get(&e.fingerprint(&q)).is_none());
                // The engine is as good as untouched: re-running without
                // the token is bit-identical to the pristine engine.
                let (rows, seconds) =
                    run(&e, &q, method, None).expect("no token, cannot stop");
                prop_assert_eq!(rows, ref_rows);
                prop_assert_eq!(seconds, ref_seconds);
            }
            Ok((rows, seconds)) => {
                // The token never fired before completion: the run under a
                // (dormant) token must equal the un-tokened reference.
                prop_assert_eq!(rows, ref_rows);
                prop_assert_eq!(seconds, ref_seconds);
            }
        }
    }
}
