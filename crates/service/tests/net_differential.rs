//! Over-the-wire differential suite: the same query mix run through
//! N concurrent TCP connections must return results **bit-identical**
//! to an in-process [`Session`] on an identically-seeded engine — at
//! 1, 4, and 16 connections.  The wire adds framing, batching,
//! threads, and admission, none of which may perturb a single row,
//! column name, or simulated cost.
//!
//! The concurrent sweep uses the plain run path, whose engine-side
//! publications (plan-cache inserts) are deterministic under
//! interleaving.  Adaptive execution *feeds back* observations that
//! later queries consume, so it is order-dependent by design; its wire
//! equivalence is pinned separately with a single connection replaying
//! the exact in-process order.

use std::sync::Mutex;

use rqo_datagen::workload::{exp1_lineitem_predicate, exp2_part_predicate};
use rqo_datagen::{TpchConfig, TpchData};
use rqo_exec::AggExpr;
use rqo_optimizer::Query;
use rqo_service::net::{NetClient, NetServer, NetServerConfig, QueryReply};
use rqo_service::proto::RunMode;
use rqo_service::{Engine, QueryService, ServiceConfig};
use rqo_storage::Value;

fn engine() -> Engine {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.001,
        seed: 7,
    });
    Engine::new(data.into_catalog())
}

/// The mixed workload: cheap single-table windows plus multi-way joins
/// with grouping, so scans, joins, and aggregates all cross the wire.
fn workload() -> Vec<Query> {
    vec![
        Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(30))
            .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
            .aggregate(AggExpr::count_star("n")),
        Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(110))
            .aggregate(AggExpr::count_star("n")),
        Query::over(&["lineitem", "orders"]).aggregate(AggExpr::count_star("n")),
        Query::over(&["lineitem", "orders", "part"])
            .filter("part", exp2_part_predicate(150))
            .aggregate(AggExpr::count_star("n")),
        Query::over(&["lineitem", "part"])
            .filter("part", exp2_part_predicate(212))
            .group(&["p_container"])
            .aggregate(AggExpr::count_star("n")),
    ]
}

/// The comparable core of a reply.
#[derive(Debug, PartialEq)]
struct Core {
    rows: Vec<Vec<Value>>,
    columns: Vec<String>,
    /// Simulated cost carried as raw bits so the comparison is exact.
    simulated: u64,
    replans: u64,
}

impl Core {
    fn of(rows: Vec<Vec<Value>>, columns: Vec<String>, seconds: f64, replans: u64) -> Core {
        Core {
            rows,
            columns,
            simulated: seconds.to_bits(),
            replans,
        }
    }
    fn from_reply(reply: QueryReply) -> Core {
        Core::of(
            reply.rows,
            reply.columns,
            reply.simulated_seconds,
            reply.replans,
        )
    }
}

#[test]
fn concurrent_wire_results_match_in_process_sessions() {
    // Ground truth from an in-process session on an identical engine.
    let truth: Vec<Core> = {
        let service = QueryService::new(engine(), ServiceConfig::default());
        let session = service.session();
        workload()
            .iter()
            .map(|q| {
                let o = session.run(q).expect("in-process run");
                Core::of(o.rows, o.columns, o.simulated_seconds, 0)
            })
            .collect()
    };

    for clients in [1usize, 4, 16] {
        let service = QueryService::new(engine(), ServiceConfig::default());
        let server =
            NetServer::bind(service, "127.0.0.1:0", NetServerConfig::default()).expect("bind");
        let addr = server.local_addr();
        let mismatches: Mutex<Vec<String>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for client_id in 0..clients {
                let truth = &truth;
                let mismatches = &mismatches;
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr).expect("connect");
                    client.hello(&format!("client-{client_id}")).expect("hello");
                    // Each client walks the workload from its own
                    // offset so different queries overlap on the server.
                    let queries = workload();
                    for k in 0..queries.len() {
                        let qi = (client_id + k) % queries.len();
                        let reply = client
                            .run_mode(&queries[qi], RunMode::Run, 0)
                            .expect("wire query succeeds");
                        let got = Core::from_reply(reply);
                        if got != truth[qi] {
                            mismatches
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(format!("client {client_id} query {qi}: {got:?}"));
                        }
                    }
                });
            }
        });

        let bad = mismatches
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(
            bad.is_empty(),
            "{clients} connections: {} mismatches vs in-process session:\n{}",
            bad.len(),
            bad.join("\n")
        );

        let total = (clients * workload().len()) as u64;
        let stats = server.service().stats();
        assert!(
            stats.slots_balanced(),
            "slot leak at {clients} clients: {stats}"
        );
        assert_eq!(
            stats.completed, total,
            "every wire query completed exactly once: {stats}"
        );
        let net = server.stats();
        assert_eq!(net.protocol_errors, 0, "clean run had protocol errors");
        assert_eq!(net.queries_ok, total);
    }
}

/// Fresh `part` rows (keys past the generated range, so unique indexes
/// stay unique) that shift the answers of every part-touching query.
fn part_batch(engine: &Engine) -> Vec<Vec<Value>> {
    let catalog = engine.catalog();
    let part = catalog.table("part").unwrap();
    let key = part.schema().expect_index("p_partkey");
    let max_key = (0..part.num_rows())
        .map(|i| match part.value(i as u32, key) {
            Value::Int(k) => k,
            other => panic!("p_partkey should be Int, got {other:?}"),
        })
        .max()
        .expect("part is non-empty");
    (0..25i64)
        .map(|i| {
            let mut row = part.row(i as u32 % part.num_rows() as u32);
            row[key] = Value::Int(max_key + 1 + i);
            row
        })
        .collect()
}

#[test]
fn insert_then_query_over_wire_matches_in_process() {
    // Ground truth: an in-process session on an identically-seeded
    // engine, ingesting the same batch before the same workload.
    let truth_engine = engine();
    let batch = part_batch(&truth_engine);
    let truth_summary = truth_engine
        .insert_rows("part", &batch)
        .expect("in-process ingest");
    let truth: Vec<Core> = {
        let service = QueryService::new(truth_engine, ServiceConfig::default());
        let session = service.session();
        workload()
            .iter()
            .map(|q| {
                let o = session.run(q).expect("in-process run");
                Core::of(o.rows, o.columns, o.simulated_seconds, 0)
            })
            .collect()
    };

    // The wire twin: same engine seed, same batch, but ingested through
    // a TCP Insert frame.
    let service = QueryService::new(engine(), ServiceConfig::default());
    let server = NetServer::bind(service, "127.0.0.1:0", NetServerConfig::default()).expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let (inserted, total) = client.insert("part", batch).expect("wire ingest");
    assert_eq!(inserted as usize, truth_summary.rows_inserted);
    assert_eq!(total as usize, truth_summary.table_rows);

    for (qi, query) in workload().iter().enumerate() {
        let reply = client.run(query).expect("wire query succeeds");
        assert_eq!(
            Core::from_reply(reply),
            truth[qi],
            "post-ingest divergence at query {qi}"
        );
    }
    let net = server.stats();
    assert_eq!(net.inserts_ok, 1, "{net}");
    assert_eq!(net.inserts_err, 0, "{net}");
    assert_eq!(net.protocol_errors, 0, "{net}");
}

#[test]
fn adaptive_wire_replay_matches_in_process_order() {
    // Adaptive runs consume the feedback earlier adaptive runs publish,
    // so equivalence is defined over a fixed order: one wire connection
    // replaying exactly the sequence the in-process session ran.
    let truth: Vec<Core> = {
        let service = QueryService::new(engine(), ServiceConfig::default());
        let session = service.session();
        workload()
            .iter()
            .map(|q| {
                let a = session.run_adaptive(q).expect("in-process adaptive");
                Core::of(
                    a.outcome.rows,
                    a.outcome.columns,
                    a.outcome.simulated_seconds,
                    a.events.len() as u64,
                )
            })
            .collect()
    };

    let service = QueryService::new(engine(), ServiceConfig::default());
    let server = NetServer::bind(service, "127.0.0.1:0", NetServerConfig::default()).expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    for (qi, query) in workload().iter().enumerate() {
        let reply = client
            .run_mode(query, RunMode::Adaptive, 0)
            .expect("wire adaptive succeeds");
        assert_eq!(
            Core::from_reply(reply),
            truth[qi],
            "adaptive divergence at query {qi}"
        );
    }
    let stats = server.service().stats();
    assert!(stats.slots_balanced(), "{stats}");
    assert_eq!(stats.completed as usize, workload().len());
}
