//! Hostile-bytes hardening for the network front-end: truncated,
//! oversized, and garbage frames must each produce one typed
//! [`ErrorCode::Protocol`] reply (or a silent close for streams that
//! never complete a frame), must never panic the server, and must never
//! leak an execution slot or a connection.  The server must keep
//! serving valid clients afterwards.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rqo_datagen::{TpchConfig, TpchData};
use rqo_exec::AggExpr;
use rqo_optimizer::Query;
use rqo_service::net::{ClientError, NetClient, NetServer, NetServerConfig};
use rqo_service::proto::{write_frame, ErrorCode, Request, Response};
use rqo_service::{Engine, QueryService, ServiceConfig};
use rqo_storage::Value;

fn serve() -> NetServer {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.001,
        seed: 7,
    });
    let service = QueryService::new(Engine::new(data.into_catalog()), ServiceConfig::default());
    NetServer::bind(service, "127.0.0.1:0", NetServerConfig::default()).expect("bind loopback")
}

fn count_query() -> Query {
    Query::over(&["part"]).aggregate(AggExpr::count_star("n"))
}

/// Polls until the server is quiescent (no open connections) so the
/// post-conditions below are race-free.
fn await_quiescent(server: &NetServer) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().active > 0 {
        assert!(Instant::now() < deadline, "connections never drained");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Complete garbage frames the server must answer with a typed
/// protocol error before closing the connection.
fn poison_frames() -> Vec<Vec<u8>> {
    let mut frames: Vec<Vec<u8>> = Vec::new();
    // Unknown tag.
    let mut f = Vec::new();
    write_frame(&mut f, &[0x7F, 1, 2, 3]).unwrap();
    frames.push(f);
    // Zero-length frame.
    frames.push(0u32.to_le_bytes().to_vec());
    // Oversized length claim (4 GiB) with no body.
    frames.push(u32::MAX.to_le_bytes().to_vec());
    // Valid Ping with trailing bytes.
    let mut body = Request::Ping { nonce: 1 }.encode();
    body.push(0xAB);
    let mut f = Vec::new();
    write_frame(&mut f, &body).unwrap();
    frames.push(f);
    // Run frame whose payload dies mid-query (bad discriminant).
    let mut f = Vec::new();
    write_frame(&mut f, &[0x02, 0, 0, 0, 0, 0, 0, 0, 0, 9]).unwrap();
    frames.push(f);
    // A batch-count lie: claims u32::MAX tables.
    let mut body = vec![0x02u8];
    body.extend_from_slice(&7u64.to_le_bytes()); // id
    body.push(0); // mode
    body.extend_from_slice(&0u64.to_le_bytes()); // deadline
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // table count
    let mut f = Vec::new();
    write_frame(&mut f, &body).unwrap();
    frames.push(f);
    // Insert into an unnamed table.
    let mut body = vec![0x04u8];
    body.extend_from_slice(&1u64.to_le_bytes()); // id
    body.extend_from_slice(&0u32.to_le_bytes()); // empty table name
    body.extend_from_slice(&0u32.to_le_bytes()); // zero rows
    let mut f = Vec::new();
    write_frame(&mut f, &body).unwrap();
    frames.push(f);
    // Insert with a row-count lie (u32::MAX rows in a tiny frame).
    let mut body = vec![0x04u8];
    body.extend_from_slice(&2u64.to_le_bytes()); // id
    body.extend_from_slice(&4u32.to_le_bytes()); // name length
    body.extend_from_slice(b"part");
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // row count
    let mut f = Vec::new();
    write_frame(&mut f, &body).unwrap();
    frames.push(f);
    // Insert cut off mid-value (one row promised, payload ends inside it).
    let mut body = vec![0x04u8];
    body.extend_from_slice(&3u64.to_le_bytes()); // id
    body.extend_from_slice(&4u32.to_le_bytes()); // name length
    body.extend_from_slice(b"part");
    body.extend_from_slice(&1u32.to_le_bytes()); // one row
    body.extend_from_slice(&1u32.to_le_bytes()); // one column
    body.push(1); // Value::Int discriminant, missing its 8 payload bytes
    let mut f = Vec::new();
    write_frame(&mut f, &body).unwrap();
    frames.push(f);
    frames
}

#[test]
fn poison_frames_get_typed_errors_and_leak_nothing() {
    let server = serve();
    let addr = server.local_addr();

    for (i, frame) in poison_frames().iter().enumerate() {
        let mut client = NetClient::connect(addr).expect("connect");
        client.send_raw(frame).expect("send poison");
        match client.recv() {
            Ok(Response::Error { id, code, .. }) => {
                assert_eq!((id, code), (0, ErrorCode::Protocol), "case {i}");
            }
            other => panic!("case {i}: expected protocol error, got {other:?}"),
        }
        // The server closed the connection after replying.
        match client.recv() {
            Err(_) => {}
            Ok(resp) => panic!("case {i}: connection stayed open: {resp:?}"),
        }
    }

    // A half-frame followed by a hangup is EOF mid-frame: a truncation
    // the server counts as a protocol error (the reply goes nowhere,
    // the connection just closes).
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&[200u8, 0, 0, 0, 1, 2, 3]).expect("send");
        drop(stream);
    }

    // The half-frame connection above may not even be accepted yet, so
    // poll the counter to its expected value instead of racing it.
    let expected = poison_frames().len() as u64 + 1;
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().protocol_errors < expected {
        assert!(
            Instant::now() < deadline,
            "every poison frame (and the truncated one) counted: {}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    await_quiescent(&server);
    let net = server.stats();
    assert_eq!(net.protocol_errors, expected, "no over-count either: {net}");

    // Nothing leaked and the server still works.
    let service_stats = server.service().stats();
    assert!(service_stats.slots_balanced(), "slot leak: {service_stats}");
    assert_eq!(service_stats.panicked, 0, "hostile bytes panicked a query");
    let mut client = NetClient::connect(addr).expect("connect after poison");
    let reply = client.run(&count_query()).expect("server still serves");
    assert_eq!(reply.rows.len(), 1);
}

#[test]
fn unknown_tables_and_columns_are_bad_query_not_panic() {
    let server = serve();
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let ghost = Query::over(&["no_such_table"]).aggregate(AggExpr::count_star("n"));
    match client.run(&ghost) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadQuery),
        other => panic!("expected BadQuery, got {other:?}"),
    }

    let ghost_col = Query::over(&["part"]).aggregate(AggExpr::sum("no_such_col", "s"));
    match client.run(&ghost_col) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadQuery),
        other => panic!("expected BadQuery, got {other:?}"),
    }

    // Same connection still serves valid queries — BadQuery is not a
    // connection-fatal condition.
    let reply = client.run(&count_query()).expect("connection survives");
    assert_eq!(reply.rows.len(), 1);

    let stats = server.service().stats();
    assert!(stats.slots_balanced());
    assert_eq!(stats.panicked, 0);
}

#[test]
fn bad_insert_batches_are_typed_errors_not_panics() {
    let server = serve();
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let width = {
        let catalog = server.service().engine().catalog();
        catalog.table("part").unwrap().schema().len()
    };

    // Unknown table.
    match client.insert("no_such_table", vec![vec![Value::Int(1); width]]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadQuery),
        other => panic!("expected BadQuery, got {other:?}"),
    }
    // Wrong arity.
    match client.insert("part", vec![vec![Value::Int(1)]]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadQuery),
        other => panic!("expected BadQuery, got {other:?}"),
    }
    // Wrong type in every column.
    match client.insert("part", vec![vec![Value::Bool(true); width]]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadQuery),
        other => panic!("expected BadQuery, got {other:?}"),
    }
    // NULLs are not storable.
    match client.insert("part", vec![vec![Value::Null; width]]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadQuery),
        other => panic!("expected BadQuery, got {other:?}"),
    }

    // None of the rejected batches changed the table, the connection
    // survived (BadQuery is not connection-fatal), and nothing leaked.
    let before = server
        .service()
        .engine()
        .catalog()
        .table("part")
        .unwrap()
        .num_rows();
    let reply = client.run(&count_query()).expect("connection survives");
    assert_eq!(reply.rows[0][0], Value::Int(before as i64));

    let stats = server.service().stats();
    assert!(stats.slots_balanced(), "slot leak: {stats}");
    assert_eq!(stats.panicked, 0);
    let net = server.stats();
    assert_eq!(net.inserts_ok, 0);
    assert_eq!(net.inserts_err, 4, "each bad batch counted once: {net}");
    assert_eq!(
        net.protocol_errors, 0,
        "schema errors are not protocol errors"
    );
}

#[test]
fn connection_limit_turns_excess_clients_away() {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.001,
        seed: 7,
    });
    let service = QueryService::new(Engine::new(data.into_catalog()), ServiceConfig::default());
    let config = NetServerConfig::default().with_max_connections(1);
    let server = NetServer::bind(service, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let mut first = NetClient::connect(addr).expect("first connect");
    first.ping().expect("first connection live");

    let mut second = NetClient::connect(addr).expect("tcp connect succeeds");
    match second.recv() {
        Ok(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::ConnectionLimit),
        other => panic!("expected ConnectionLimit, got {other:?}"),
    }
    assert_eq!(server.stats().rejected_conn_limit, 1);

    // Capacity frees when the first client leaves.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = NetClient::connect(addr).expect("tcp connect");
        match retry.ping() {
            Ok(()) => break,
            Err(_) => assert!(Instant::now() < deadline, "slot never freed"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Socket-level fuzz: arbitrary byte blobs (whatever frames they
    /// happen to contain) never panic the server and never leak slots.
    /// One shared server across all cases keeps this cheap.
    #[test]
    fn random_bytes_never_wedge_the_server(blob in proptest::collection::vec(any::<u8>(), 0..128)) {
        use std::sync::OnceLock;
        static SERVER: OnceLock<NetServer> = OnceLock::new();
        let server = SERVER.get_or_init(serve);

        {
            let mut stream = TcpStream::connect(server.local_addr()).unwrap();
            let _ = stream.write_all(&blob);
            // Read whatever comes back (error frame or close) so the
            // write is not raced by our own reset, then hang up.
            read_one(&mut stream);
        }

        // The server still answers a valid client and leaked nothing.
        let mut client = NetClient::connect(server.local_addr()).unwrap();
        client.ping().expect("server alive");
        let reply = client.run(&count_query()).expect("server functional");
        prop_assert_eq!(reply.rows.len(), 1);
        drop(client);
        let stats = server.service().stats();
        prop_assert!(stats.slots_balanced(), "slot leak: {}", stats);
        prop_assert_eq!(stats.panicked, 0);
    }
}

/// Reads one response frame with a timeout, ignoring failures.
fn read_one(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = rqo_service::proto::read_frame(stream);
}
