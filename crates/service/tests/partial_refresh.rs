//! Incremental statistics refresh at the engine level: the regression
//! tests for the headline bug.  `refresh_statistics_partial` used to be
//! impossible to express — the only refresh advanced the *global*
//! statistics epoch, wiping every table's feedback observations and
//! retiring every cached plan's fingerprint, even for queries that never
//! touch the refreshed table.  These tests pin the scoped behavior:
//!
//! * feedback observations referencing other tables survive a partial
//!   refresh byte-for-byte;
//! * warm plan-cache entries for other tables keep hitting;
//! * plans and observations that *do* read the refreshed table are
//!   retired, exactly as a full refresh would have retired them;
//! * `set_drift_bound` carries the cache's lifetime counters forward
//!   instead of zeroing the operator's statistics.

use rqo_datagen::workload::{exp1_lineitem_predicate, exp2_part_predicate};
use rqo_datagen::{TpchConfig, TpchData};
use rqo_exec::AggExpr;
use rqo_optimizer::Query;
use rqo_service::Engine;
use rqo_storage::{Catalog, PartitionSpec, PartitionedTableBuilder, TableBuilder, Value};

/// A small TPC-H catalog with `part` range-partitioned four ways on
/// `p_partkey`; `orders` and `lineitem` stay single-blob.  Row order is
/// identical to the flat catalog (partition keys ascend), so plans and
/// results are comparable across the two layouts.
fn partitioned_catalog() -> Catalog {
    let flat = TpchData::generate(&TpchConfig {
        scale_factor: 0.001,
        seed: 7,
    })
    .into_catalog();
    let part = flat.table("part").unwrap();
    let n = part.num_rows() as i64;
    let bounds: Vec<Value> = (1..4).map(|i| part.value((i * n / 4) as u32, 0)).collect();
    let spec = PartitionSpec::Range {
        column: part.schema().column(0).name.clone(),
        bounds,
    };
    let mut b = PartitionedTableBuilder::new("part", part.schema().clone(), spec);
    for rid in 0..part.num_rows() as u32 {
        b.push_row(&part.row(rid));
    }
    let (table, layout) = b.finish();
    let mut cat = Catalog::new();
    cat.add_partitioned_table(table, layout).unwrap();
    for name in ["orders", "lineitem"] {
        let t = flat.table(name).unwrap();
        let mut tb = TableBuilder::new(name, t.schema().clone(), t.num_rows());
        for rid in 0..t.num_rows() as u32 {
            tb.push_row(&t.row(rid));
        }
        cat.add_table(tb.finish()).unwrap();
    }
    for fk in flat.foreign_keys() {
        cat.add_foreign_key(&fk.from_table, &fk.from_column, &fk.to_table, &fk.to_column)
            .unwrap();
    }
    cat
}

fn lineitem_query() -> Query {
    Query::over(&["lineitem"])
        .filter("lineitem", exp1_lineitem_predicate(30))
        .aggregate(AggExpr::count_star("n"))
}

fn part_query() -> Query {
    Query::over(&["part"])
        .filter("part", exp2_part_predicate(160))
        .aggregate(AggExpr::count_star("n"))
}

fn join_query() -> Query {
    Query::over(&["lineitem", "part"])
        .filter("part", exp2_part_predicate(170))
        .aggregate(AggExpr::count_star("n"))
}

#[test]
fn partial_refresh_preserves_other_tables_feedback_and_plans() {
    let mut e = Engine::new(partitioned_catalog());
    let opts = e.query_exec_options(None, None);
    let li = lineitem_query();
    let pq = part_query();
    let jq = join_query();

    // Warm everything: feedback observations and cached plans for a
    // lineitem-only query, a part-only query, and a join reading both.
    e.explain_analyze_opts(&li, &opts).unwrap();
    let lineitem_only = e.feedback().snapshot();
    assert!(
        !lineitem_only.is_empty(),
        "the lineitem query must record feedback for the test to mean anything"
    );
    e.explain_analyze_opts(&pq, &opts).unwrap();
    e.explain_analyze_opts(&jq, &opts).unwrap();
    assert!(e.feedback().len() > lineitem_only.len());

    let fp_li = e.fingerprint(&li);
    let fp_part = e.fingerprint(&pq);
    let fp_join = e.fingerprint(&jq);
    assert!(e.plan_cache().contains(&fp_li));
    assert!(e.plan_cache().contains(&fp_part));
    assert!(e.plan_cache().contains(&fp_join));

    // Refresh one partition of `part`.  Scoped invalidation: only
    // part-referencing state is retired.
    e.refresh_statistics_partial("part", &[1], 0xBEEF);

    // Feedback: exactly the part-referencing observations are gone — the
    // survivor set is byte-identical to the post-lineitem snapshot.
    assert_eq!(e.feedback().snapshot(), lineitem_only);
    assert_eq!(
        e.stats_epoch(),
        0,
        "partial refresh must not bump the global epoch"
    );

    // Plans: the lineitem entry is still warm under its old fingerprint;
    // the part and join entries are dropped and their fingerprints moved.
    assert!(e.plan_cache().contains(&fp_li));
    assert!(!e.plan_cache().contains(&fp_part));
    assert!(!e.plan_cache().contains(&fp_join));
    assert_ne!(e.fingerprint(&pq), fp_part);
    assert_ne!(e.fingerprint(&jq), fp_join);
    assert_eq!(e.fingerprint(&li), fp_li);

    // And the warm entry actually hits.
    let hits_before = e.cache_stats().hits;
    e.run_opts(&li, &opts).unwrap();
    assert_eq!(e.cache_stats().hits, hits_before + 1);

    // The refreshed table replans cleanly and returns the same rows: the
    // sample changed, the data did not.
    let before = e.run_opts(&pq, &opts).unwrap().rows;
    let again = e.run_opts(&pq, &opts).unwrap().rows;
    assert_eq!(before, again);
}

#[test]
fn partial_refresh_on_unpartitioned_table_is_scoped_too() {
    let mut e = Engine::new(partitioned_catalog());
    let opts = e.query_exec_options(None, None);
    let li = lineitem_query();
    let pq = part_query();
    e.explain_analyze_opts(&li, &opts).unwrap();
    e.explain_analyze_opts(&pq, &opts).unwrap();
    let fp_li = e.fingerprint(&li);
    let fp_part = e.fingerprint(&pq);

    // Empty partition list on a single-blob table: whole-table resample,
    // still scoped to that table.
    e.refresh_statistics_partial("lineitem", &[], 0xF00D);
    assert!(!e.plan_cache().contains(&fp_li));
    assert!(e.plan_cache().contains(&fp_part));
    assert_ne!(e.fingerprint(&li), fp_li);
    assert_eq!(e.fingerprint(&pq), fp_part);
}

#[test]
fn full_refresh_still_invalidates_globally() {
    let mut e = Engine::new(partitioned_catalog());
    let opts = e.query_exec_options(None, None);
    let li = lineitem_query();
    let pq = part_query();
    e.explain_analyze_opts(&li, &opts).unwrap();
    e.explain_analyze_opts(&pq, &opts).unwrap();
    let fp_li = e.fingerprint(&li);
    let fp_part = e.fingerprint(&pq);

    e.refresh_statistics(0xD1CE);
    assert!(e.feedback().is_empty());
    assert_eq!(e.stats_epoch(), 1);
    assert_ne!(e.fingerprint(&li), fp_li);
    assert_ne!(e.fingerprint(&pq), fp_part);
}

#[test]
fn set_drift_bound_carries_cache_stats_forward() {
    let mut e = Engine::new(partitioned_catalog());
    let opts = e.query_exec_options(None, None);
    let li = lineitem_query();
    // One miss (planned + cached after execution), then two hits.
    e.run_opts(&li, &opts).unwrap();
    e.run_opts(&li, &opts).unwrap();
    e.run_opts(&li, &opts).unwrap();
    let before = e.cache_stats();
    assert!(before.hits >= 2);
    assert_eq!(before.entries, 1);

    e.set_drift_bound(2.5);

    let after = e.cache_stats();
    assert_eq!(after.hits, before.hits, "hits must survive the knob change");
    assert_eq!(after.misses, before.misses);
    assert_eq!(after.drift_evictions, before.drift_evictions);
    assert_eq!(
        after.epoch_invalidations,
        before.epoch_invalidations + before.entries as u64,
        "dropped entries are accounted, not vanished"
    );
    assert_eq!(after.entries, 0);

    // The next run replans (the old entry is gone) and re-warms.
    e.run_opts(&li, &opts).unwrap();
    assert_eq!(e.cache_stats().misses, before.misses + 1);
    assert_eq!(e.cache_stats().entries, 1);
}
