//! `rqo-service` — the concurrent query service.
//!
//! Everything below `rqo-service` in the crate graph is single-query:
//! the optimizer plans one query, the executor runs one plan.  This
//! crate adds the *multi-session* layer a server needs:
//!
//! - **[`Engine`]** owns the shared per-database state (catalog,
//!   synopses, plan cache, feedback store) and exposes
//!   cancellation-aware `*_opts` entry points with strict publication
//!   hygiene: a stopped query never inserts into the plan cache, never
//!   records feedback observations, and never drift-evicts entries.
//! - **[`WorkerPool`]** is one long-lived pool of morsel workers shared
//!   by every running query, scheduling round-robin across queries
//!   (one morsel per pick) so short queries are not starved by long
//!   ones.  It replaces the executor's default per-query scoped
//!   threads when a service is in front.
//! - **[`QueryService`]** ties them together with admission control
//!   (bounded concurrency, bounded wait queue with timeout) and
//!   deadline/cancellation propagation from [`QueryHandle`] tokens
//!   into every morsel loop, plus [`ServiceStats`] counters.
//!
//! Single-tenant equivalence is a hard invariant: a query run through
//! the service returns bit-identical rows, operator metrics, and
//! tracked cost to the same query run on a standalone engine,
//! regardless of pool size or how many clients run concurrently.

#![warn(missing_docs)]

pub mod engine;
pub mod net;
pub mod pool;
pub mod proto;
pub mod service;

pub use engine::{
    AdaptiveOutcome, AnalyzedOutcome, Engine, InsertSummary, QueryOutcome, ReplanEvent,
};
pub use net::{ClientError, NetClient, NetServer, NetServerConfig, NetStats, QueryReply};
pub use pool::WorkerPool;
pub use proto::{ErrorCode, ProtoError, Request, Response, RunMode};
pub use service::{QueryHandle, QueryService, ServiceError, ServiceStats, Session};

pub use rqo_core::{QueryToken, ServiceConfig, StopReason};
