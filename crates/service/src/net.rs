//! The network front-end: [`NetServer`] serves the wire protocol of
//! [`proto`](crate::proto) over TCP, multiplexing connections onto one
//! shared [`QueryService`].
//!
//! # Connection lifecycle
//!
//! ```text
//!             accept            TAG_HELLO?          TAG_RUN ...
//! client ───► acceptor ───► [reader thread] ──mpsc──► [executor thread]
//!   │           │ (over limit: Error frame,             │ tenant quota
//!   │           │  close)                               │ validate vs catalog
//!   │           │                                       │ QueryService::run*
//!   │    EOF / io error                                 ▼
//!   └──────► reader cancels the in-flight     Batch* · Done | Error
//!            QueryToken and signals EOF          (written back)
//! ```
//!
//! Each connection gets **two** threads: a *reader* that blocks on
//! frame reads and an *executor* that runs queries and writes
//! responses.  The split is what makes disconnect propagation work
//! with blocking I/O: while the executor is deep inside a query, the
//! reader is parked on `read()`, so the moment the client goes away
//! (EOF or reset) the reader cancels the in-flight [`QueryToken`] and
//! the query stops at its next morsel boundary — with the engine's
//! usual no-trace hygiene (nothing published to plan cache or
//! feedback).
//!
//! Malformed bytes never panic the server and never leak an execution
//! slot: frames are decoded defensively ([`ProtoError`]), the peer gets
//! one typed [`ErrorCode::Protocol`] reply, and the connection closes.
//! Per-tenant admission quotas ([`NetServerConfig::tenant_quota`])
//! bound each tenant's in-flight queries *before* the service's global
//! slot/queue machinery, so one bad tenant cannot occupy every slot.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use rqo_core::{QueryToken, StopReason};
use rqo_optimizer::Query;
use rqo_storage::Value;

use crate::proto::{
    read_frame, write_frame, ErrorCode, FrameReadError, ProtoError, Request, Response, RunMode,
    DEFAULT_BATCH_ROWS,
};
use crate::service::{QueryHandle, QueryService, ServiceError};

/// Configuration for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Maximum simultaneously open connections; excess connections get
    /// an [`ErrorCode::ConnectionLimit`] frame and are closed.
    pub max_connections: usize,
    /// Per-tenant in-flight query cap (`None` = unlimited).  Applied
    /// before global admission so one tenant cannot monopolize slots.
    pub tenant_quota: Option<usize>,
    /// Rows per [`Response::Batch`] frame when streaming results.
    pub batch_rows: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 512,
            tenant_quota: None,
            batch_rows: DEFAULT_BATCH_ROWS,
        }
    }
}

impl NetServerConfig {
    /// Sets the connection cap.
    pub fn with_max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Sets the per-tenant in-flight query quota.
    pub fn with_tenant_quota(mut self, n: usize) -> Self {
        self.tenant_quota = Some(n);
        self
    }

    /// Sets the streaming batch size (rows per batch frame).
    pub fn with_batch_rows(mut self, n: usize) -> Self {
        self.batch_rows = n.max(1);
        self
    }
}

/// A point-in-time snapshot of the network layer's counters.  The
/// query-level counters ([`ServiceStats`](crate::ServiceStats)) live on
/// the service underneath; these count wire-level events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections accepted and handed to a session.
    pub accepted: u64,
    /// Connections turned away at the connection cap.
    pub rejected_conn_limit: u64,
    /// Currently open connections (gauge).
    pub active: u64,
    /// Malformed frames answered with [`ErrorCode::Protocol`].
    pub protocol_errors: u64,
    /// Queries answered with `Batch* + Done`.
    pub queries_ok: u64,
    /// Queries answered with a typed [`Response::Error`].
    pub queries_err: u64,
    /// Runs refused by the per-tenant quota.
    pub tenant_rejections: u64,
    /// In-flight queries cancelled because their client disconnected.
    pub disconnect_cancels: u64,
    /// Insert batches answered with [`Response::InsertOk`].
    pub inserts_ok: u64,
    /// Insert batches answered with a typed [`Response::Error`].
    pub inserts_err: u64,
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accepted={} rejected_conn_limit={} active={} protocol_errors={} \
             queries_ok={} queries_err={} tenant_rejections={} disconnect_cancels={} \
             inserts_ok={} inserts_err={}",
            self.accepted,
            self.rejected_conn_limit,
            self.active,
            self.protocol_errors,
            self.queries_ok,
            self.queries_err,
            self.tenant_rejections,
            self.disconnect_cancels,
            self.inserts_ok,
            self.inserts_err,
        )
    }
}

#[derive(Default)]
struct NetStatsCells {
    accepted: AtomicU64,
    rejected_conn_limit: AtomicU64,
    active: AtomicU64,
    protocol_errors: AtomicU64,
    queries_ok: AtomicU64,
    queries_err: AtomicU64,
    tenant_rejections: AtomicU64,
    disconnect_cancels: AtomicU64,
    inserts_ok: AtomicU64,
    inserts_err: AtomicU64,
}

impl NetStatsCells {
    fn snapshot(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            rejected_conn_limit: self.rejected_conn_limit.load(Ordering::SeqCst),
            active: self.active.load(Ordering::SeqCst),
            protocol_errors: self.protocol_errors.load(Ordering::SeqCst),
            queries_ok: self.queries_ok.load(Ordering::SeqCst),
            queries_err: self.queries_err.load(Ordering::SeqCst),
            tenant_rejections: self.tenant_rejections.load(Ordering::SeqCst),
            disconnect_cancels: self.disconnect_cancels.load(Ordering::SeqCst),
            inserts_ok: self.inserts_ok.load(Ordering::SeqCst),
            inserts_err: self.inserts_err.load(Ordering::SeqCst),
        }
    }
}

struct NetInner {
    service: QueryService,
    config: NetServerConfig,
    stats: NetStatsCells,
    /// In-flight query count per tenant (quota accounting).
    tenants: Mutex<HashMap<String, usize>>,
    /// Stream clones of open connections, for shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>,
    shutting_down: AtomicBool,
}

impl NetInner {
    fn tenants_lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, usize>> {
        self.tenants.lock().unwrap_or_else(PoisonError::into_inner)
    }
    fn conns_lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Holds one unit of a tenant's quota; released on drop (even if the
/// query panics).
struct TenantSlot {
    inner: Arc<NetInner>,
    tenant: String,
}

impl TenantSlot {
    fn acquire(inner: &Arc<NetInner>, tenant: &str) -> Option<TenantSlot> {
        let mut map = inner.tenants_lock();
        let count = map.entry(tenant.to_string()).or_insert(0);
        if let Some(quota) = inner.config.tenant_quota {
            if *count >= quota {
                return None;
            }
        }
        *count += 1;
        Some(TenantSlot {
            inner: Arc::clone(inner),
            tenant: tenant.to_string(),
        })
    }
}

impl Drop for TenantSlot {
    fn drop(&mut self) {
        let mut map = self.inner.tenants_lock();
        if let Some(count) = map.get_mut(&self.tenant) {
            *count -= 1;
            if *count == 0 {
                map.remove(&self.tenant);
            }
        }
    }
}

/// What the reader thread forwards to the executor thread.
enum ConnEvent {
    /// A well-formed request.
    Req(Request),
    /// The peer broke the protocol; reply and close.
    Bad(ProtoError),
    /// The peer disconnected (EOF or transport error).
    Eof,
}

/// A TCP server speaking the `proto` wire format over a shared
/// [`QueryService`].  Dropping the server shuts it down (acceptor
/// stopped, open connections closed, in-flight queries cancelled).
pub struct NetServer {
    inner: Arc<NetInner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn bind(
        service: QueryService,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(NetInner {
            service,
            config,
            stats: NetStatsCells::default(),
            tenants: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            shutting_down: AtomicBool::new(false),
        });
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let inner = Arc::clone(&inner);
            let handles = Arc::clone(&conn_handles);
            std::thread::Builder::new()
                .name("rqo-net-acceptor".into())
                .spawn(move || accept_loop(listener, inner, handles))?
        };
        Ok(NetServer {
            inner,
            addr: local,
            acceptor: Some(acceptor),
            conn_handles,
        })
    }

    /// The bound address (use after binding port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &QueryService {
        &self.inner.service
    }

    /// Wire-level counters.
    pub fn stats(&self) -> NetStats {
        self.inner.stats.snapshot()
    }

    /// Stops accepting, closes every open connection (cancelling
    /// in-flight queries via their tokens), and joins all threads.
    pub fn shutdown(&mut self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of `accept()` with a throwaway
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Closing the sockets EOFs every reader, which cancels
        // in-flight tokens and unwinds the executors.
        for (_, stream) in self.inner.conns_lock().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handles = std::mem::take(&mut *lock_handles(&self.conn_handles));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn lock_handles(
    handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    handles.lock().unwrap_or_else(PoisonError::into_inner)
}

fn accept_loop(
    listener: TcpListener,
    inner: Arc<NetInner>,
    handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn_id: u64 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let active = inner.stats.active.load(Ordering::SeqCst);
        if active as usize >= inner.config.max_connections {
            inner
                .stats
                .rejected_conn_limit
                .fetch_add(1, Ordering::SeqCst);
            let mut stream = stream;
            let reply = Response::Error {
                id: 0,
                code: ErrorCode::ConnectionLimit,
                message: "connection limit reached".into(),
            };
            let _ = write_frame(&mut stream, &reply.encode());
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        inner.stats.accepted.fetch_add(1, Ordering::SeqCst);
        inner.stats.active.fetch_add(1, Ordering::SeqCst);
        let conn_id = next_conn_id;
        next_conn_id += 1;
        if let Ok(clone) = stream.try_clone() {
            inner.conns_lock().insert(conn_id, clone);
        }
        let conn_inner = Arc::clone(&inner);
        let spawned = std::thread::Builder::new()
            .name(format!("rqo-net-conn-{conn_id}"))
            .spawn(move || {
                // The executor must never bring the server down: a
                // panic that escapes a query (already accounted by the
                // service's `panicked` counter) ends this connection
                // only.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    serve_connection(&conn_inner, conn_id, stream)
                }));
                conn_inner.conns_lock().remove(&conn_id);
                conn_inner.stats.active.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(handle) => {
                let mut guard = lock_handles(&handles);
                // Reap finished connections so the vec stays bounded
                // over a long-lived server.
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(_) => {
                inner.conns_lock().remove(&conn_id);
                inner.stats.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// The executor side of one connection; spawns and joins its reader.
fn serve_connection(inner: &Arc<NetInner>, conn_id: u64, stream: TcpStream) {
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx): (Sender<ConnEvent>, Receiver<ConnEvent>) = channel();
    // The in-flight query's token, shared with the reader so a
    // disconnect can cancel it while the executor is blocked inside
    // the service.
    let in_flight: Arc<Mutex<Option<QueryToken>>> = Arc::new(Mutex::new(None));
    let reader = {
        let inner = Arc::clone(inner);
        let in_flight = Arc::clone(&in_flight);
        std::thread::Builder::new()
            .name(format!("rqo-net-read-{conn_id}"))
            .spawn(move || read_loop(reader_stream, tx, in_flight, inner))
    };
    let reader = match reader {
        Ok(h) => h,
        Err(_) => return,
    };
    executor_loop(inner, stream, rx, &in_flight);
    let _ = reader.join();
}

/// Blocks on frame reads; forwards decoded requests, reports protocol
/// errors, and turns EOF/transport failure into cancellation of the
/// in-flight query.
fn read_loop(
    mut stream: TcpStream,
    tx: Sender<ConnEvent>,
    in_flight: Arc<Mutex<Option<QueryToken>>>,
    inner: Arc<NetInner>,
) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(body)) => match Request::decode(&body) {
                Ok(req) => {
                    if tx.send(ConnEvent::Req(req)).is_err() {
                        return; // executor gone
                    }
                }
                Err(e) => {
                    let _ = tx.send(ConnEvent::Bad(e));
                    return;
                }
            },
            Ok(None) | Err(FrameReadError::Io(_)) => {
                // Client disconnected (cleanly or not): cancel whatever
                // is running so the slot frees at the next morsel.
                let token = in_flight
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take();
                if let Some(token) = token {
                    token.cancel();
                    inner
                        .stats
                        .disconnect_cancels
                        .fetch_add(1, Ordering::SeqCst);
                }
                let _ = tx.send(ConnEvent::Eof);
                return;
            }
            Err(FrameReadError::Proto(e)) => {
                let _ = tx.send(ConnEvent::Bad(e));
                return;
            }
        }
    }
}

/// Processes requests serially and writes responses.
fn executor_loop(
    inner: &Arc<NetInner>,
    mut stream: TcpStream,
    rx: Receiver<ConnEvent>,
    in_flight: &Arc<Mutex<Option<QueryToken>>>,
) {
    let mut tenant = String::new();
    while let Ok(event) = rx.recv() {
        match event {
            ConnEvent::Req(Request::Hello { tenant: t }) => tenant = t,
            ConnEvent::Req(Request::Ping { nonce }) => {
                if send(&mut stream, &Response::Pong { nonce }).is_err() {
                    break;
                }
            }
            ConnEvent::Req(Request::Run {
                id,
                mode,
                deadline_ms,
                query,
            }) => {
                let ok = handle_run(
                    inner,
                    &mut stream,
                    in_flight,
                    &tenant,
                    id,
                    mode,
                    deadline_ms,
                    query,
                );
                if !ok {
                    break;
                }
            }
            ConnEvent::Req(Request::Insert { id, table, rows }) => {
                if !handle_insert(inner, &mut stream, &tenant, id, &table, rows) {
                    break;
                }
            }
            ConnEvent::Bad(e) => {
                inner.stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        id: 0,
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    },
                );
                break;
            }
            ConnEvent::Eof => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Runs one query end to end; returns `false` if the connection is
/// unwritable and should close.
#[allow(clippy::too_many_arguments)]
fn handle_run(
    inner: &Arc<NetInner>,
    stream: &mut TcpStream,
    in_flight: &Arc<Mutex<Option<QueryToken>>>,
    tenant: &str,
    id: u64,
    mode: RunMode,
    deadline_ms: u64,
    query: Query,
) -> bool {
    let fail = |stream: &mut TcpStream, code: ErrorCode, message: String| {
        inner.stats.queries_err.fetch_add(1, Ordering::SeqCst);
        send(stream, &Response::Error { id, code, message }).is_ok()
    };

    // Validate against the catalog before spending an admission slot:
    // unknown tables/columns are a client error, not a server panic.
    if let Err(msg) = validate_query(inner, &query) {
        return fail(stream, ErrorCode::BadQuery, msg);
    }

    // Per-tenant quota, ahead of global admission.
    let _tenant_slot = match TenantSlot::acquire(inner, tenant) {
        Some(slot) => slot,
        None => {
            inner.stats.tenant_rejections.fetch_add(1, Ordering::SeqCst);
            return fail(
                stream,
                ErrorCode::TenantQuota,
                format!("tenant {tenant:?} is at its in-flight quota"),
            );
        }
    };

    let handle = if deadline_ms > 0 {
        QueryHandle::with_deadline(Duration::from_millis(deadline_ms))
    } else {
        QueryHandle::new()
    };
    *in_flight.lock().unwrap_or_else(PoisonError::into_inner) = Some(handle.token().clone());

    let service = &inner.service;
    let result = catch_unwind(AssertUnwindSafe(|| match mode {
        RunMode::Run => service.run(&query, &handle).map(|o| (o, 0u64)),
        RunMode::Adaptive => service
            .run_adaptive(&query, &handle)
            .map(|a| (a.outcome, a.events.len() as u64)),
    }));

    // Clear the in-flight slot; the reader may already have taken it
    // (disconnect), which is fine — the token is per-query.
    in_flight
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();

    match result {
        Ok(Ok((outcome, replans))) => {
            let total_rows = outcome.rows.len() as u64;
            for chunk in outcome.rows.chunks(inner.config.batch_rows.max(1)) {
                let batch = Response::Batch {
                    id,
                    rows: chunk.to_vec(),
                };
                if send(stream, &batch).is_err() {
                    return false;
                }
            }
            inner.stats.queries_ok.fetch_add(1, Ordering::SeqCst);
            send(
                stream,
                &Response::Done {
                    id,
                    columns: outcome.columns,
                    total_rows,
                    simulated_seconds: outcome.simulated_seconds,
                    estimated_seconds: outcome.estimated_seconds,
                    replans,
                },
            )
            .is_ok()
        }
        Ok(Err(e)) => {
            let code = match e {
                ServiceError::QueueFull => ErrorCode::QueueFull,
                ServiceError::QueueTimeout => ErrorCode::QueueTimeout,
                ServiceError::Stopped(StopReason::Cancelled) => ErrorCode::Cancelled,
                ServiceError::Stopped(StopReason::DeadlineExceeded) => ErrorCode::DeadlineExceeded,
            };
            fail(stream, code, e.to_string())
        }
        Err(_) => fail(
            stream,
            ErrorCode::Internal,
            "query execution panicked".into(),
        ),
    }
}

/// Ingests one insert batch; returns `false` if the connection is
/// unwritable and should close.
///
/// Inserts run on the connection's executor thread under the same
/// per-tenant quota as queries (an insert occupies one unit of the
/// tenant's in-flight budget while it holds the catalog write lock),
/// and a panic inside the storage layer ends the batch with a typed
/// [`ErrorCode::Internal`] — never the server.
fn handle_insert(
    inner: &Arc<NetInner>,
    stream: &mut TcpStream,
    tenant: &str,
    id: u64,
    table: &str,
    rows: Vec<Vec<Value>>,
) -> bool {
    let fail = |stream: &mut TcpStream, code: ErrorCode, message: String| {
        inner.stats.inserts_err.fetch_add(1, Ordering::SeqCst);
        send(stream, &Response::Error { id, code, message }).is_ok()
    };

    let _tenant_slot = match TenantSlot::acquire(inner, tenant) {
        Some(slot) => slot,
        None => {
            inner.stats.tenant_rejections.fetch_add(1, Ordering::SeqCst);
            return fail(
                stream,
                ErrorCode::TenantQuota,
                format!("tenant {tenant:?} is at its in-flight quota"),
            );
        }
    };

    let engine = inner.service.engine();
    let result = catch_unwind(AssertUnwindSafe(|| engine.insert_rows(table, &rows)));
    match result {
        Ok(Ok(summary)) => {
            inner.stats.inserts_ok.fetch_add(1, Ordering::SeqCst);
            send(
                stream,
                &Response::InsertOk {
                    id,
                    rows_inserted: summary.rows_inserted as u64,
                    table_rows: summary.table_rows as u64,
                },
            )
            .is_ok()
        }
        Ok(Err(e)) => fail(stream, ErrorCode::BadQuery, e.to_string()),
        Err(_) => fail(stream, ErrorCode::Internal, "insert panicked".into()),
    }
}

/// Checks a decoded query against the catalog: every table exists,
/// every predicate binds against its table's schema, and every
/// group-by / aggregate column exists on some listed table.
fn validate_query(inner: &Arc<NetInner>, query: &Query) -> Result<(), String> {
    let catalog = inner.service.engine().catalog();
    let mut schemas = Vec::with_capacity(query.tables.len());
    for name in &query.tables {
        match catalog.table(name) {
            Ok(table) => schemas.push(table.schema()),
            Err(_) => return Err(format!("unknown table {name:?}")),
        }
    }
    for (table, predicate) in &query.predicates {
        let idx = query
            .tables
            .iter()
            .position(|t| t == table)
            .expect("decode enforced predicate tables are listed");
        if let Err(e) = predicate.bind(schemas[idx]) {
            return Err(format!("predicate on {table:?}: {e}"));
        }
    }
    let column_exists = |col: &str| schemas.iter().any(|s| s.index_of(col).is_some());
    for col in &query.group_by {
        if !column_exists(col) {
            return Err(format!("unknown group-by column {col:?}"));
        }
    }
    for agg in &query.aggregates {
        if let Some(col) = &agg.column {
            if !column_exists(col) {
                return Err(format!("unknown aggregate column {col:?}"));
            }
        }
    }
    Ok(())
}

fn send(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    write_frame(stream, &resp.encode())?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Why a [`NetClient`] call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes violated the protocol (or the connection
    /// closed mid-reply).
    Proto(ProtoError),
    /// The server answered with a typed error frame.
    Server {
        /// The error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Io(e) => ClientError::Io(e),
            FrameReadError::Proto(e) => ClientError::Proto(e),
        }
    }
}

/// A successful query's reply, reassembled from its batch stream.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Result rows, in result order.
    pub rows: Vec<Vec<Value>>,
    /// Output column names.
    pub columns: Vec<String>,
    /// Simulated execution cost in seconds.
    pub simulated_seconds: f64,
    /// The optimizer's estimate in seconds.
    pub estimated_seconds: f64,
    /// Mid-query re-plans.
    pub replans: u64,
}

/// A blocking client for the wire protocol: one request at a time over
/// one TCP connection.  Used by tests, the bench driver, and
/// `rqo_serve --connect`.
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
}

impl NetClient {
    /// Connects to a [`NetServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(NetClient { stream, next_id: 1 })
    }

    /// Declares this connection's tenant (no reply expected).
    pub fn hello(&mut self, tenant: &str) -> io::Result<()> {
        let req = Request::Hello {
            tenant: tenant.to_string(),
        };
        write_frame(&mut self.stream, &req.encode())
    }

    /// Round-trips a ping.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let nonce = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &Request::Ping { nonce }.encode())?;
        match self.recv()? {
            Response::Pong { nonce: n } if n == nonce => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Runs `query` and reassembles the streamed reply.
    pub fn run(&mut self, query: &Query) -> Result<QueryReply, ClientError> {
        self.run_mode(query, RunMode::Run, 0)
    }

    /// Runs `query` under `mode` with an optional deadline
    /// (`deadline_ms == 0` means none).
    pub fn run_mode(
        &mut self,
        query: &Query,
        mode: RunMode,
        deadline_ms: u64,
    ) -> Result<QueryReply, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request::Run {
            id,
            mode,
            deadline_ms,
            query: query.clone(),
        };
        write_frame(&mut self.stream, &req.encode())?;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        loop {
            match self.recv()? {
                Response::Batch {
                    id: rid,
                    rows: mut batch,
                } if rid == id => {
                    rows.append(&mut batch);
                }
                Response::Done {
                    id: rid,
                    columns,
                    total_rows,
                    simulated_seconds,
                    estimated_seconds,
                    replans,
                } if rid == id => {
                    if total_rows != rows.len() as u64 {
                        return Err(ClientError::Proto(ProtoError::Invalid(
                            "row count mismatch between batches and summary",
                        )));
                    }
                    return Ok(QueryReply {
                        rows,
                        columns,
                        simulated_seconds,
                        estimated_seconds,
                        replans,
                    });
                }
                Response::Error { code, message, .. } => {
                    return Err(ClientError::Server { code, message })
                }
                other => return Err(unexpected(other)),
            }
        }
    }

    /// Appends `rows` to `table`; returns `(rows_inserted, table_rows)`
    /// on success.  The batch is atomic server-side: a schema violation
    /// anywhere in it rejects the whole batch.
    pub fn insert(
        &mut self,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<(u64, u64), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request::Insert {
            id,
            table: table.to_string(),
            rows,
        };
        write_frame(&mut self.stream, &req.encode())?;
        match self.recv()? {
            Response::InsertOk {
                id: rid,
                rows_inserted,
                table_rows,
            } if rid == id => Ok((rows_inserted, table_rows)),
            other => Err(unexpected(other)),
        }
    }

    /// Sends raw bytes down the socket (for malformed-frame tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one response frame.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream)? {
            Some(body) => Response::decode(&body).map_err(ClientError::Proto),
            None => Err(ClientError::Proto(ProtoError::Truncated)),
        }
    }

    /// The underlying stream (for tests that need to half-close or
    /// drop abruptly).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

fn unexpected(resp: Response) -> ClientError {
    match resp {
        Response::Error { code, message, .. } => ClientError::Server { code, message },
        _ => ClientError::Proto(ProtoError::Invalid("response for a different request")),
    }
}
