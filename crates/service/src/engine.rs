//! The shared query engine: catalog + statistics + optimizer + executor
//! behind cancellation-aware entry points.
//!
//! This is the single-tenant `RobustDb` core, factored out so that one
//! engine can be shared by many concurrent sessions through
//! [`QueryService`](crate::QueryService).  Every execution entry point
//! takes [`ExecOptions`] (carrying the query's token and the shared
//! worker-pool scheduler) and returns `Result<_, StopReason>`: a
//! cancelled or past-deadline query surfaces as `Err` instead of a
//! result.
//!
//! # Cancellation hygiene
//!
//! A stopped query must look — to every shared structure — as if it never
//! ran:
//!
//! * [`run_opts`](Engine::run_opts) plans on a cache miss but publishes
//!   the plan into the [`PlanCache`] only **after** a successful
//!   execution;
//! * [`explain_analyze_opts`](Engine::explain_analyze_opts) publishes the
//!   fresh plan, the feedback observations, and the drift checks only
//!   after the run completes;
//! * [`run_adaptive_opts`](Engine::run_adaptive_opts) records trip
//!   observations into a private [`FeedbackStore::fork`] (which the
//!   mid-query re-plans read), and replays them onto the shared store —
//!   and through the plan cache's drift rule — only when the query
//!   completes.  A query cancelled between re-plans leaves the shared
//!   feedback store and cache byte-identical to never having started.

use std::sync::{Arc, RwLock};

use rqo_core::{
    AdaptivePolicy, ConfidenceThreshold, EstimatorConfig, FeedbackStore, PlanSelection, QueryToken,
    RobustEstimator, RobustnessLevel, StopReason,
};
use rqo_exec::{
    execute_guarded, guard_points, Batch, ExecOptions, ExecStatus, MorselScheduler, OpMetrics,
    PhysicalPlan, RowGuard,
};
use rqo_optimizer::{
    CacheStats, MaterializedFragment, NodeAnnotation, Optimizer, PlanCache, PlanFingerprint,
    PlannedQuery, Query,
};
use rqo_stats::sketch::DEFAULT_PRECISION;
use rqo_stats::{SynopsisRepository, TableSketches};
use rqo_storage::{Catalog, CostParams, CostTracker, StorageError, Value};

/// Recovers a read guard from a poisoned lock: the protected value is an
/// immutable `Arc` snapshot swapped atomically, so a panicking writer
/// cannot have left it half-updated.
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Same recovery for writers.
fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The result of running one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The plan the optimizer chose.
    pub plan: PhysicalPlan,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Output column names.
    pub columns: Vec<String>,
    /// Simulated execution time in seconds under the database's cost
    /// parameters.
    pub simulated_seconds: f64,
    /// The optimizer's own cost estimate, in seconds, for comparison.
    pub estimated_seconds: f64,
}

/// The result of `EXPLAIN ANALYZE`: a [`QueryOutcome`] plus the
/// per-operator metrics tree, annotated with the optimizer's own
/// cardinality estimates so every node reports estimate vs. actual and
/// the q-error between them.
#[derive(Debug, Clone)]
pub struct AnalyzedOutcome {
    /// The ordinary query result.
    pub outcome: QueryOutcome,
    /// Per-operator metrics, in the same tree shape as the plan.
    pub metrics: OpMetrics,
}

impl AnalyzedOutcome {
    /// Renders the annotated plan tree — the `EXPLAIN ANALYZE` output.
    ///
    /// Deterministic: identical at every thread count and morsel size for
    /// the same database and query.
    pub fn render(&self) -> String {
        self.metrics.render()
    }
}

/// One mid-query re-plan, as recorded by adaptive execution.
#[derive(Debug, Clone)]
pub struct ReplanEvent {
    /// Pre-order index of the tripped guard's node in the plan that was
    /// executing when the guard fired.
    pub node: usize,
    /// Operator label of the tripped node.
    pub label: String,
    /// Output rows the plan priced the node at.
    pub est_rows: f64,
    /// Rows actually materialized at the pipeline breaker.
    pub actual_rows: u64,
    /// q-error between them (> the policy's guard bound, by construction).
    pub q_error: f64,
    /// Confidence threshold the tripped plan was optimized at.
    pub threshold_before: ConfidenceThreshold,
    /// Escalated threshold the re-plan was optimized at.
    pub threshold_after: ConfidenceThreshold,
    /// Selection mode the tripped plan was chosen under.
    pub selection_before: PlanSelection,
    /// Selection mode the re-plan was chosen under — on the second trip
    /// the policy escalates from quantile to expected-penalty mode
    /// (point-collapsing the posterior has failed twice).
    pub selection_after: PlanSelection,
    /// Observed selectivities fed back before re-planning.
    pub observations: usize,
    /// Whether the re-plan grafted a `Materialized` leaf over the
    /// finished fragment (`false` ⇒ the fresh plan had no matching
    /// subtree and recomputes from scratch — correct, just not resumed).
    pub resumed: bool,
    /// Shape of the plan that tripped.
    pub old_shape: String,
    /// Shape of the re-planned query.
    pub new_shape: String,
}

impl ReplanEvent {
    /// Renders the event as one log paragraph (deterministic).
    pub fn render(&self) -> String {
        format!(
            "guard tripped at node {} [{}]: est {:.1} rows, actual {} rows, q-error {:.2}\n  \
             threshold {}% -> {}%{}; {} observation(s) fed back; {}\n  \
             plan: {} -> {}",
            self.node,
            self.label,
            self.est_rows,
            self.actual_rows,
            self.q_error,
            self.threshold_before.percent(),
            self.threshold_after.percent(),
            if self.selection_after == PlanSelection::ExpectedPenalty {
                " [penalty]"
            } else {
                ""
            },
            self.observations,
            if self.resumed {
                "resumed from materialized checkpoint"
            } else {
                "no matching subtree, recomputing"
            },
            self.old_shape,
            self.new_shape,
        )
    }
}

/// The result of adaptive execution: the query outcome, the re-plan
/// event log, and the metrics tree of the final (completed) execution.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The ordinary query result.  `plan` is the plan that ran to
    /// completion; `simulated_seconds` is the **total** tracked cost
    /// including all partial executions before re-plans, and
    /// `estimated_seconds` is the first plan's estimate.
    pub outcome: QueryOutcome,
    /// One entry per guard trip, in order.
    pub events: Vec<ReplanEvent>,
    /// Per-operator metrics of the completed execution, annotated with
    /// the final plan's estimates.
    pub metrics: OpMetrics,
}

impl AdaptiveOutcome {
    /// Number of mid-query re-plans that occurred.
    pub fn replans(&self) -> usize {
        self.events.len()
    }

    /// Renders the re-plan event log followed by the final plan's
    /// annotated metrics tree.  Deterministic: identical at every thread
    /// count for the same database and query.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "adaptive execution: {} re-plan(s)\n",
            self.replans()
        ));
        for (i, event) in self.events.iter().enumerate() {
            out.push_str(&format!("[{}] {}\n", i + 1, event.render()));
        }
        out.push_str("final plan:\n");
        out.push_str(&self.metrics.render());
        out
    }
}

/// The shared query engine: catalog, precomputed join synopses, robust
/// optimizer, feedback store, and plan cache.  All execution entry
/// points take `&self` — one engine serves any number of threads.
pub struct Engine {
    /// Snapshot-swapped: queries clone the `Arc` once at entry and run
    /// against that immutable snapshot; ingest publishes a successor
    /// under the write lock.  Readers never block behind a running
    /// query — the lock is held only for the `Arc` clone/swap.
    catalog: RwLock<Arc<Catalog>>,
    params: CostParams,
    /// Snapshot-swapped alongside the catalog (same discipline).
    synopses: RwLock<Arc<SynopsisRepository>>,
    threshold: ConfidenceThreshold,
    selection: PlanSelection,
    sample_size: usize,
    seed: u64,
    exec_options: ExecOptions,
    feedback: Arc<FeedbackStore>,
    plan_cache: Arc<PlanCache>,
    adaptive_policy: AdaptivePolicy,
}

/// What [`Engine::insert_rows`] did, for observability and wire replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertSummary {
    /// Rows appended by this batch.
    pub rows_inserted: usize,
    /// The table's total row count after the append.
    pub table_rows: usize,
    /// Distinct partitions the batch touched (sorted; `[0]` for
    /// unpartitioned tables).
    pub partitions_touched: Vec<usize>,
}

impl Engine {
    /// Builds the engine over a catalog, precomputing 500-tuple join
    /// synopses (the paper's recommended size) for every table.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_options(catalog, CostParams::default(), 500, 0xD5)
    }

    /// Full-control constructor: cost parameters, synopsis sample size,
    /// and sampling seed.
    pub fn with_options(
        catalog: Catalog,
        params: CostParams,
        sample_size: usize,
        seed: u64,
    ) -> Self {
        let catalog = Arc::new(catalog);
        let synopses = Arc::new(SynopsisRepository::build_all(&catalog, sample_size, seed));
        Self {
            catalog: RwLock::new(catalog),
            params,
            synopses: RwLock::new(synopses),
            threshold: RobustnessLevel::Moderate.threshold(),
            selection: PlanSelection::default(),
            sample_size,
            seed,
            exec_options: ExecOptions::default(),
            feedback: Arc::new(FeedbackStore::new()),
            plan_cache: Arc::new(PlanCache::default()),
            adaptive_policy: AdaptivePolicy::default(),
        }
    }

    /// Sets the adaptive re-optimization policy.
    pub fn set_adaptive_policy(&mut self, policy: AdaptivePolicy) {
        self.adaptive_policy = policy;
    }

    /// The active adaptive re-optimization policy.
    pub fn adaptive_policy(&self) -> &AdaptivePolicy {
        &self.adaptive_policy
    }

    /// Sets the base executor options (threads, morsel size).  The
    /// service layer overlays a token and the shared scheduler per query.
    pub fn set_exec_options(&mut self, exec_options: ExecOptions) {
        self.exec_options = exec_options;
    }

    /// The base executor options.
    pub fn exec_options(&self) -> &ExecOptions {
        &self.exec_options
    }

    /// Sets the system-wide robustness preset.
    pub fn set_robustness(&mut self, level: RobustnessLevel) {
        self.threshold = level.threshold();
    }

    /// Sets an explicit confidence threshold.
    pub fn set_threshold(&mut self, threshold: ConfidenceThreshold) {
        self.threshold = threshold;
    }

    /// Sets the system-wide plan-selection mode (per-query
    /// [`Query::with_selection`] overrides still win).
    pub fn set_selection(&mut self, selection: PlanSelection) {
        self.selection = selection;
    }

    /// The active plan-selection mode.
    pub fn selection(&self) -> PlanSelection {
        self.selection
    }

    /// Replaces the plan cache with an empty one using `bound` as its
    /// drift bound.  The cache's lifetime counters (hits, misses,
    /// drift evictions) carry forward — changing a tuning knob should
    /// not zero the operator's statistics; the dropped entries are
    /// counted as epoch invalidations.
    pub fn set_drift_bound(&mut self, bound: f64) {
        self.plan_cache = Arc::new(self.plan_cache.rebuilt_with_drift_bound(bound));
    }

    /// Re-draws the precomputed samples (the `UPDATE STATISTICS`
    /// analogue).  Advances the statistics epoch, which invalidates
    /// recorded feedback and cached plans.
    pub fn refresh_statistics(&mut self, seed: u64) {
        self.seed = seed;
        let catalog = self.catalog();
        *write_lock(&self.synopses) = Arc::new(SynopsisRepository::build_all(
            &catalog,
            self.sample_size,
            seed,
        ));
        let epoch = self.feedback.advance_epoch();
        self.plan_cache.invalidate_epochs_before(epoch);
    }

    /// Incremental `UPDATE STATISTICS`: re-samples one table — and, for a
    /// partitioned table with a non-empty `partitions` list, only the
    /// named partitions — leaving every other table's statistics
    /// byte-for-byte untouched.
    ///
    /// Invalidation is scoped to match: the refreshed table's *per-table*
    /// feedback epoch advances (evicting exactly the observations that
    /// reference it) and only the cached plans reading it are dropped.
    /// Other tables' feedback, learned posteriors, and warm plans
    /// survive — the whole point of refreshing incrementally.
    ///
    /// # Panics
    ///
    /// Panics when `table` is not in the catalog's synopsis set or a
    /// partition index is out of range, mirroring
    /// [`SynopsisRepository::refresh_table`].
    pub fn refresh_statistics_partial(&mut self, table: &str, partitions: &[usize], seed: u64) {
        let catalog = self.catalog();
        let mut synopses = SynopsisRepository::clone(&self.synopses());
        synopses.refresh_table(&catalog, table, partitions, seed);
        *write_lock(&self.synopses) = Arc::new(synopses);
        self.feedback.advance_table_epoch(table);
        self.plan_cache.invalidate_table(table);
    }

    /// Appends a batch of rows to one table — the streaming-ingest entry
    /// point, callable from any thread (`&self`, like the query paths).
    ///
    /// The append is published with **snapshot semantics**: a new
    /// catalog version (rows routed to their partitions, per-partition
    /// min/max widened, cached indexes rebuilt) and a new statistics
    /// version (per-partition per-column HLL sketches and reservoir
    /// samples updated incrementally — seeded from the stored rows on a
    /// table's first streamed batch) are swapped in atomically; queries
    /// already running keep their pre-insert snapshots.
    ///
    /// Invalidation is scoped exactly like a partial statistics refresh:
    /// the table's per-table feedback epoch advances and only cached
    /// plans reading it are dropped, so warm plans for untouched tables
    /// survive ingest.
    ///
    /// # Errors
    ///
    /// [`StorageError::UnknownTable`] for an unregistered table and
    /// [`StorageError::SchemaMismatch`] for rows failing
    /// arity/type/NULL validation; failed batches change nothing.
    pub fn insert_rows(
        &self,
        table: &str,
        rows: &[Vec<Value>],
    ) -> Result<InsertSummary, StorageError> {
        // Serialize ingest on the catalog write lock for the whole
        // update so concurrent batches to the same table compose;
        // queries only ever take the read lock for an Arc clone.
        let mut catalog_slot = write_lock(&self.catalog);
        if rows.is_empty() {
            // A no-op batch publishes nothing and invalidates nothing.
            let table_rows = catalog_slot.table(table)?.num_rows();
            return Ok(InsertSummary {
                rows_inserted: 0,
                table_rows,
                partitions_touched: Vec::new(),
            });
        }
        let mut catalog = Catalog::clone(&catalog_slot);
        let assignments = catalog.append_rows(table, rows)?;
        let table_rows = catalog.table(table)?.num_rows();

        // Streaming statistics: seed from the pre-insert snapshot on
        // first contact, then fold in the batch row by row.
        let old_catalog = Arc::clone(&catalog_slot);
        let synopses_snapshot = self.synopses();
        let mut sketches = match synopses_snapshot.sketches_for(table) {
            Some(ts) => TableSketches::clone(ts),
            None => {
                let t = old_catalog.table(table).expect("append validated the name");
                let id = old_catalog.table_id(table).expect("table exists").0 as u64;
                TableSketches::seeded_from_table(
                    t,
                    old_catalog.partitioning(table).map(Arc::as_ref),
                    DEFAULT_PRECISION,
                    self.sample_size,
                    self.seed ^ ((id + 1) << 48),
                )
            }
        };
        for (row, &p) in rows.iter().zip(&assignments) {
            sketches.observe(p, row);
        }
        let mut synopses = SynopsisRepository::clone(&synopses_snapshot);
        synopses.publish_sketches(Arc::new(sketches));

        // Publish both snapshots, then invalidate — scoped to `table`.
        *catalog_slot = Arc::new(catalog);
        *write_lock(&self.synopses) = Arc::new(synopses);
        drop(catalog_slot);
        self.feedback.advance_table_epoch(table);
        self.plan_cache.invalidate_table(table);

        let mut partitions_touched = assignments;
        partitions_touched.sort_unstable();
        partitions_touched.dedup();
        Ok(InsertSummary {
            rows_inserted: rows.len(),
            table_rows,
            partitions_touched,
        })
    }

    /// The streaming sketch statistics for a table, if ingest has
    /// touched it (testing/inspection).
    pub fn sketches_for(&self, table: &str) -> Option<Arc<TableSketches>> {
        self.synopses().sketches_for(table).cloned()
    }

    /// The current global statistics epoch: 0 at construction, bumped by
    /// every full [`refresh_statistics`](Self::refresh_statistics).
    /// Partial refreshes advance per-table epochs instead; fingerprints
    /// combine both via [`FeedbackStore::epoch_for_tables`].
    pub fn stats_epoch(&self) -> u64 {
        self.feedback.epoch()
    }

    /// The current catalog snapshot.  Owned: the caller keeps one
    /// consistent version even while concurrent ingest publishes
    /// successors.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&read_lock(&self.catalog))
    }

    /// The current statistics snapshot (same semantics as
    /// [`catalog`](Self::catalog)).
    pub fn synopses(&self) -> Arc<SynopsisRepository> {
        Arc::clone(&read_lock(&self.synopses))
    }

    /// The cost parameters execution is charged under.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The active confidence threshold.
    pub fn threshold(&self) -> ConfidenceThreshold {
        self.threshold
    }

    /// The execution-feedback store.
    pub fn feedback(&self) -> &Arc<FeedbackStore> {
        &self.feedback
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// A point-in-time snapshot of the plan cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// An optimizer bound to this engine's statistics, threshold, and
    /// shared feedback store.
    pub fn optimizer(&self) -> Optimizer {
        self.optimizer_with_feedback(Arc::clone(&self.feedback))
    }

    /// An optimizer reading `feedback` instead of the shared store —
    /// adaptive re-plans pass a private fork here so their tentative
    /// observations steer the re-plan without touching shared state.
    pub fn optimizer_with_feedback(&self, feedback: Arc<FeedbackStore>) -> Optimizer {
        let est = RobustEstimator::new(
            self.synopses(),
            EstimatorConfig::with_threshold(self.threshold),
        )
        .with_feedback(feedback);
        Optimizer::new(self.catalog(), self.params, Arc::new(est))
    }

    /// The fingerprint under which this engine would cache a query's
    /// plan right now.  The epoch component combines the global epoch
    /// with the per-table epochs of the query's tables, so a partial
    /// statistics refresh retires exactly the fingerprints that read the
    /// refreshed table and leaves every other query's warm entry valid.
    pub fn fingerprint(&self, query: &Query) -> PlanFingerprint {
        let epoch = self
            .feedback
            .epoch_for_tables(query.tables.iter().map(String::as_str));
        PlanFingerprint::of_with(query, self.threshold, epoch, self.selection)
    }

    /// Optimizes a query through the shared plan cache: a hit returns
    /// the memoized plan; a miss plans fresh and caches **immediately**
    /// (no execution is involved, so there is no cancellation window).
    pub fn optimize(&self, query: &Query) -> Arc<PlannedQuery> {
        let fingerprint = self.fingerprint(query);
        if let Some(planned) = self.plan_cache.get(&fingerprint) {
            return planned;
        }
        let planned = self.optimizer().optimize_with(query, self.selection);
        self.plan_cache.insert(fingerprint, planned)
    }

    /// Per-query executor options: the engine's base options overlaid
    /// with the query's token and (when pooled) the shared scheduler.
    pub fn query_exec_options(
        &self,
        token: Option<QueryToken>,
        scheduler: Option<Arc<dyn MorselScheduler>>,
    ) -> ExecOptions {
        let mut opts = self.exec_options.clone();
        if let Some(token) = token {
            opts = opts.with_token(token);
        }
        if let Some(scheduler) = scheduler {
            opts = opts.with_scheduler(scheduler);
        }
        opts
    }

    fn outcome(&self, planned: &PlannedQuery, batch: Batch, seconds: f64) -> QueryOutcome {
        let Batch { schema, rows } = batch;
        QueryOutcome {
            plan: planned.plan.clone(),
            columns: schema.names().iter().map(|s| s.to_string()).collect(),
            rows,
            simulated_seconds: seconds,
            estimated_seconds: planned.estimated_cost_ms / 1000.0,
        }
    }

    /// Optimizes (through the plan cache) and executes a query.  On a
    /// cache miss the fresh plan is cached only after the execution
    /// completes, so a stopped query never publishes anything.
    pub fn run_opts(&self, query: &Query, opts: &ExecOptions) -> Result<QueryOutcome, StopReason> {
        let fingerprint = self.fingerprint(query);
        let cached = self.plan_cache.get(&fingerprint);
        let planned = match &cached {
            Some(planned) => Arc::clone(planned),
            None => Arc::new(self.optimizer().optimize_with(query, self.selection)),
        };
        let catalog = self.catalog();
        let (batch, cost) =
            rqo_exec::try_execute_with(&planned.plan, &catalog, &self.params, opts)?;
        if cached.is_none() {
            self.plan_cache
                .insert_shared(fingerprint, Arc::clone(&planned));
        }
        Ok(self.outcome(&planned, batch, cost.seconds(&self.params)))
    }

    /// The observed selectivity of one annotated node, floored at half a
    /// tuple: a zero-row result is evidence the selectivity is *small*,
    /// not that it is exactly 0.0.
    fn observation(ann: &NodeAnnotation, rows_out: u64) -> Option<f64> {
        if ann.predicates.is_empty() || ann.root_rows <= 0.0 {
            return None;
        }
        Some(((rows_out as f64).max(0.5) / ann.root_rows).clamp(0.0, 1.0))
    }

    /// Publishes one observation into the shared feedback store and the
    /// plan cache's drift check.  Returns whether the node had a
    /// recordable estimation request.
    fn record_observation(&self, rows_out: u64, ann: &NodeAnnotation) -> bool {
        let Some(observed) = Self::observation(ann, rows_out) else {
            return false;
        };
        let tables: Vec<&str> = ann.tables.iter().map(String::as_str).collect();
        let predicates: Vec<_> = ann
            .predicates
            .iter()
            .map(|(t, e)| (t.as_str(), e))
            .collect();
        self.feedback.record(&tables, &predicates, observed);
        let key = FeedbackStore::canonical_key(&tables, &predicates);
        self.plan_cache.observe(&key, observed);
        true
    }

    /// Records one observation into a *private* store only — no drift
    /// check, nothing shared.  The adaptive path uses this for its fork.
    fn record_tentative(store: &FeedbackStore, rows_out: u64, ann: &NodeAnnotation) -> bool {
        let Some(observed) = Self::observation(ann, rows_out) else {
            return false;
        };
        let tables: Vec<&str> = ann.tables.iter().map(String::as_str).collect();
        let predicates: Vec<_> = ann
            .predicates
            .iter()
            .map(|(t, e)| (t.as_str(), e))
            .collect();
        store.record(&tables, &predicates, observed);
        true
    }

    /// Runs a query with **mid-query adaptive re-optimization** under the
    /// engine's [`AdaptivePolicy`].  See the module docs for the
    /// cancellation hygiene; completed runs behave exactly like the
    /// single-tenant adaptive path (same trips, same re-plans, same
    /// published feedback and drift evictions).
    pub fn run_adaptive_opts(
        &self,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<AdaptiveOutcome, StopReason> {
        let policy = self.adaptive_policy.clone();
        let mut threshold = query.hint.unwrap_or(self.threshold);
        let mut selection = query.selection.unwrap_or(self.selection);
        let fingerprint = self.fingerprint(query);
        let cached = self.plan_cache.get(&fingerprint);
        let initial = match &cached {
            Some(planned) => Arc::clone(planned),
            None => Arc::new(self.optimizer().optimize_with(query, self.selection)),
        };
        let mut planned = Arc::clone(&initial);
        let estimated_seconds = planned.estimated_cost_ms / 1000.0;
        let mut tracker = CostTracker::new();
        let mut events: Vec<ReplanEvent> = Vec::new();
        let mut slots: Vec<Batch> = Vec::new();
        // Tentative state: the fork steers mid-query re-plans; `pending`
        // is replayed onto the shared store only on completion.
        let fork = Arc::new(self.feedback.fork());
        let mut pending: Vec<(u64, NodeAnnotation)> = Vec::new();
        // One catalog snapshot for the whole adaptive run: re-plans and
        // resumed fragments must see the data the tripped plan ran over.
        let catalog = self.catalog();

        loop {
            // Guards stay armed while the re-plan budget lasts; the final
            // permitted execution runs unguarded to completion.
            let guards: Vec<RowGuard> = if policy.is_enabled() && events.len() < policy.max_replans
            {
                guard_points(&planned.plan)
                    .into_iter()
                    .filter_map(|idx| {
                        let ann = planned.node_annotations.get(idx)?.as_ref()?;
                        (!ann.tables.is_empty()).then_some(RowGuard {
                            node: idx,
                            est_rows: ann.est_rows,
                            bound: policy.guard_bound,
                        })
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let status = execute_guarded(
                &planned.plan,
                &catalog,
                &self.params,
                opts,
                &guards,
                &slots,
                &mut tracker,
            );
            match status {
                ExecStatus::Complete { batch, mut metrics } => {
                    // Publish: the initial plan first (it is what the
                    // fingerprint priced), then the observations — whose
                    // drift checks may immediately evict it, exactly as
                    // if they had been recorded live.
                    if cached.is_none() {
                        self.plan_cache
                            .insert_shared(fingerprint.clone(), Arc::clone(&initial));
                    }
                    for (rows_out, ann) in &pending {
                        self.record_observation(*rows_out, ann);
                    }
                    metrics.annotate(&planned.node_estimates());
                    let seconds = tracker.seconds(&self.params);
                    let mut outcome = self.outcome(&planned, batch, seconds);
                    outcome.estimated_seconds = estimated_seconds;
                    return Ok(AdaptiveOutcome {
                        outcome,
                        events,
                        metrics,
                    });
                }
                ExecStatus::Stopped(reason) => return Err(reason),
                ExecStatus::Tripped(trip) => {
                    // The tripped node's subtree is complete: record its
                    // observed selectivities into the fork (for the
                    // re-plan) and queue them for publication.  In
                    // pre-order a subtree is a contiguous block starting
                    // at its root, so the subtree's metrics zip with the
                    // annotations from `trip.node` on.
                    let mut observations = 0;
                    for (node, annotation) in trip
                        .metrics
                        .preorder()
                        .iter()
                        .zip(&planned.node_annotations[trip.node..])
                    {
                        let Some(ann) = annotation else { continue };
                        if Self::record_tentative(&fork, node.rows_out, ann) {
                            observations += 1;
                            pending.push((node.rows_out, ann.clone()));
                        }
                    }
                    let before = threshold;
                    let selection_before = selection;
                    threshold = policy.escalate(threshold, events.len());
                    selection = policy.escalate_selection(selection, events.len());
                    let ann = planned.node_annotations[trip.node]
                        .as_ref()
                        .expect("guards are only armed on annotated nodes");
                    let fragment = MaterializedFragment::from_annotation(ann, slots.len());
                    // Re-plan directly — NOT through `optimize` — so the
                    // grafted plan never enters the plan cache; and
                    // against the fork, so a later cancellation leaves
                    // the shared store untouched.  The selection mode is
                    // pinned onto the re-plan query so the replanner (and
                    // its annotation derivation) sees the escalated mode.
                    let replan_query = query.clone().with_hint(threshold).with_selection(selection);
                    let (new_planned, resumed) = self
                        .optimizer_with_feedback(Arc::clone(&fork))
                        .replan_with_materialized(&replan_query, &fragment);
                    events.push(ReplanEvent {
                        node: trip.node,
                        label: trip.metrics.label.clone(),
                        est_rows: trip.est_rows,
                        actual_rows: trip.actual_rows,
                        q_error: trip.q_error,
                        threshold_before: before,
                        threshold_after: threshold,
                        selection_before,
                        selection_after: selection,
                        observations,
                        resumed,
                        old_shape: planned.shape(),
                        new_shape: new_planned.shape(),
                    });
                    if resumed {
                        slots.push(trip.batch);
                    }
                    planned = Arc::new(new_planned);
                }
            }
        }
    }

    /// `EXPLAIN ANALYZE`: plans fresh, executes, and — only after the
    /// run completes — caches the fresh plan, records every annotated
    /// operator's observed selectivity into the shared feedback store,
    /// and feeds each observation through the plan cache's drift check.
    pub fn explain_analyze_opts(
        &self,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<AnalyzedOutcome, StopReason> {
        let planned = Arc::new(self.optimizer().optimize_with(query, self.selection));
        let catalog = self.catalog();
        let (batch, cost, mut metrics) =
            rqo_exec::try_execute_analyze(&planned.plan, &catalog, &self.params, opts)?;
        let planned = self
            .plan_cache
            .insert_shared(self.fingerprint(query), planned);
        metrics.annotate(&planned.node_estimates());

        // Record observed selectivities: each annotated node's actual
        // output cardinality, relative to the root relation the planner
        // priced it against, keyed by the exact (tables, predicates)
        // request the estimator answered during planning.
        for (node, annotation) in metrics.preorder().iter().zip(&planned.node_annotations) {
            let Some(ann) = annotation else { continue };
            self.record_observation(node.rows_out, ann);
        }

        let outcome = self.outcome(&planned, batch, cost.seconds(&self.params));
        Ok(AnalyzedOutcome { outcome, metrics })
    }

    /// A **side-effect-free** `EXPLAIN ANALYZE`: plans fresh (bypassing
    /// the cache and its counters), executes with metrics, and publishes
    /// nothing — no cache insert, no feedback, no drift checks.  Because
    /// planning is deterministic given the engine's current statistics
    /// and feedback, any number of concurrent `analyze_quiet` calls for
    /// the same query return bit-identical plans, rows, metrics, and
    /// tracked costs — the property the service differential tests pin.
    pub fn analyze_quiet(
        &self,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<AnalyzedOutcome, StopReason> {
        let planned = self.optimizer().optimize_with(query, self.selection);
        let catalog = self.catalog();
        let (batch, cost, mut metrics) =
            rqo_exec::try_execute_analyze(&planned.plan, &catalog, &self.params, opts)?;
        metrics.annotate(&planned.node_estimates());
        let outcome = self.outcome(&planned, batch, cost.seconds(&self.params));
        Ok(AnalyzedOutcome { outcome, metrics })
    }
}
