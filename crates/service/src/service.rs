//! The multi-session query service: admission control + shared worker
//! pool + per-query deadline/cancellation, over one shared [`Engine`].
//!
//! ```text
//! Session ── QueryHandle(token) ──► admission ──► slot ──► Engine::*_opts
//!                                      │                      │
//!                                 bounded queue          WorkerPool (shared,
//!                                 + timeout              round-robin morsels)
//! ```
//!
//! A query first passes the **admission controller**: at most
//! `max_concurrent` queries hold execution slots; up to `queue_capacity`
//! more wait (each at most `queue_timeout`, and each polling its own
//! token while it waits); everything beyond that is rejected
//! immediately.  An admitted query executes on the **shared worker
//! pool**, which round-robins morsels across all running queries so one
//! expensive join cannot starve short queries.  Cancellation and
//! deadlines propagate from the [`QueryHandle`] through every morsel
//! loop: a fired token stops the query within one morsel, frees its slot
//! (the guard is drop-based, so even a panic releases it), and — by the
//! engine's hygiene rules — publishes nothing.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use rqo_core::{QueryToken, ServiceConfig, StopReason};
use rqo_exec::MorselScheduler;
use rqo_optimizer::Query;

use crate::engine::{AdaptiveOutcome, AnalyzedOutcome, Engine, QueryOutcome};
use crate::pool::WorkerPool;

/// Why the service refused to produce a result for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The admission queue was full on arrival.
    QueueFull,
    /// The query waited `queue_timeout` without getting a slot.
    QueueTimeout,
    /// The query's token fired (while queued or while executing).
    Stopped(StopReason),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull => f.write_str("rejected: admission queue full"),
            ServiceError::QueueTimeout => f.write_str("rejected: queue wait timed out"),
            ServiceError::Stopped(reason) => write!(f, "stopped: {reason}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A client's handle on one query: the cancellation/deadline token,
/// cloneable to other threads so a running (or queued) query can be
/// cancelled from outside.
#[derive(Debug, Clone, Default)]
pub struct QueryHandle {
    token: QueryToken,
}

impl QueryHandle {
    /// A handle with no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle whose query must finish within `deadline` from now
    /// (queue wait included).
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            token: QueryToken::with_deadline(deadline),
        }
    }

    /// Requests cancellation; takes effect at the query's next morsel
    /// boundary (or immediately, if it is still queued).
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// The underlying token.
    pub fn token(&self) -> &QueryToken {
        &self.token
    }
}

/// A point-in-time snapshot of the service's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Queries that received an execution slot.
    pub admitted: u64,
    /// Queries that had to wait in the admission queue (subset of
    /// arrivals; they may later be admitted, time out, or stop).
    pub queued: u64,
    /// Arrivals rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Queued queries rejected after waiting `queue_timeout`.
    pub rejected_queue_timeout: u64,
    /// Admitted queries that ran to completion.
    pub completed: u64,
    /// Admitted queries stopped by cancellation.
    pub cancelled: u64,
    /// Admitted queries stopped by their deadline.
    pub deadline_exceeded: u64,
    /// Queries whose token fired while still waiting for a slot.
    pub stopped_in_queue: u64,
    /// Admitted queries whose execution closure panicked (the panic is
    /// re-raised after accounting; the slot is freed by the guard).
    pub panicked: u64,
    /// High-water mark of the admission queue depth.
    pub peak_queued: u64,
}

impl ServiceStats {
    /// Every admitted query eventually returned its slot: completed,
    /// cancelled, deadline-exceeded, or panicked.  True only when the
    /// service is quiescent (no query mid-flight) — the bench's
    /// self-check.
    pub fn slots_balanced(&self) -> bool {
        self.admitted == self.completed + self.cancelled + self.deadline_exceeded + self.panicked
    }
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admitted={} queued={} peak_queued={} rejected_full={} rejected_timeout={} \
             completed={} cancelled={} deadline_exceeded={} stopped_in_queue={} panicked={}",
            self.admitted,
            self.queued,
            self.peak_queued,
            self.rejected_queue_full,
            self.rejected_queue_timeout,
            self.completed,
            self.cancelled,
            self.deadline_exceeded,
            self.stopped_in_queue,
            self.panicked,
        )
    }
}

#[derive(Default)]
struct StatsCells {
    admitted: AtomicU64,
    queued: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_queue_timeout: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
    stopped_in_queue: AtomicU64,
    panicked: AtomicU64,
    peak_queued: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            admitted: self.admitted.load(Ordering::SeqCst),
            queued: self.queued.load(Ordering::SeqCst),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::SeqCst),
            rejected_queue_timeout: self.rejected_queue_timeout.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            cancelled: self.cancelled.load(Ordering::SeqCst),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::SeqCst),
            stopped_in_queue: self.stopped_in_queue.load(Ordering::SeqCst),
            panicked: self.panicked.load(Ordering::SeqCst),
            peak_queued: self.peak_queued.load(Ordering::SeqCst),
        }
    }
}

/// Slot accounting for the admission controller.
#[derive(Default)]
struct AdmissionState {
    running: usize,
    waiting: usize,
}

struct Admission {
    state: Mutex<AdmissionState>,
    freed: Condvar,
}

/// How long a queued query sleeps between token polls.  Short enough
/// that cancellation of a *queued* query is prompt; long enough to stay
/// off the lock.
const QUEUE_POLL: Duration = Duration::from_millis(2);

impl Admission {
    fn lock(&self) -> MutexGuard<'_, AdmissionState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct Inner {
    engine: Arc<Engine>,
    pool: Arc<WorkerPool>,
    config: ServiceConfig,
    admission: Admission,
    stats: StatsCells,
}

/// Releases the execution slot on drop (so a panicking query still
/// frees it) and wakes one queued waiter.
struct SlotGuard<'a> {
    inner: &'a Inner,
}

impl fmt::Debug for SlotGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SlotGuard")
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.inner.admission.lock();
        state.running -= 1;
        drop(state);
        self.inner.admission.freed.notify_all();
    }
}

impl Inner {
    /// Admission control: immediate slot, bounded wait, or rejection.
    fn admit(&self, token: &QueryToken) -> Result<SlotGuard<'_>, ServiceError> {
        let mut state = self.admission.lock();
        if state.running < self.config.max_concurrent {
            state.running += 1;
            self.stats.admitted.fetch_add(1, Ordering::SeqCst);
            return Ok(SlotGuard { inner: self });
        }
        if state.waiting >= self.config.queue_capacity {
            self.stats
                .rejected_queue_full
                .fetch_add(1, Ordering::SeqCst);
            return Err(ServiceError::QueueFull);
        }
        state.waiting += 1;
        self.stats.queued.fetch_add(1, Ordering::SeqCst);
        self.stats
            .peak_queued
            .fetch_max(state.waiting as u64, Ordering::SeqCst);
        let give_up = Instant::now() + self.config.queue_timeout;
        loop {
            // Wait in short slices so a queued query still notices its
            // own cancellation/deadline promptly.
            let (guard, _) = self
                .admission
                .freed
                .wait_timeout(state, QUEUE_POLL)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if state.running < self.config.max_concurrent {
                state.waiting -= 1;
                state.running += 1;
                self.stats.admitted.fetch_add(1, Ordering::SeqCst);
                return Ok(SlotGuard { inner: self });
            }
            if let Some(reason) = token.poll() {
                state.waiting -= 1;
                self.stats.stopped_in_queue.fetch_add(1, Ordering::SeqCst);
                return Err(ServiceError::Stopped(reason));
            }
            if Instant::now() >= give_up {
                state.waiting -= 1;
                self.stats
                    .rejected_queue_timeout
                    .fetch_add(1, Ordering::SeqCst);
                return Err(ServiceError::QueueTimeout);
            }
        }
    }
}

/// The concurrent query service.  Cheap to clone (all state is shared);
/// one instance serves any number of client threads through
/// [`Session`]s.
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<Inner>,
}

impl QueryService {
    /// Builds a service over an engine: spawns the shared worker pool
    /// and installs the admission controller.
    pub fn new(engine: Engine, config: ServiceConfig) -> Self {
        Self::over(Arc::new(engine), config)
    }

    /// Builds a service over an already-shared engine.
    pub fn over(engine: Arc<Engine>, config: ServiceConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.workers));
        Self {
            inner: Arc::new(Inner {
                engine,
                pool,
                config,
                admission: Admission {
                    state: Mutex::new(AdmissionState::default()),
                    freed: Condvar::new(),
                },
                stats: StatsCells::default(),
            }),
        }
    }

    /// The shared engine (catalog, plan cache, feedback store, ...).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner.engine
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats.snapshot()
    }

    /// Instantaneous admission gauge: `(running, waiting)`.  Unlike the
    /// monotone [`ServiceStats`] counters this is a live sample, meant
    /// for queue-depth polling by benches and monitors.
    pub fn admission_depth(&self) -> (usize, usize) {
        let state = self.inner.admission.lock();
        (state.running, state.waiting)
    }

    /// Opens a client session.  Sessions share the engine (plan cache,
    /// feedback) and the worker pool; each query gets its own handle.
    pub fn session(&self) -> Session {
        Session {
            service: self.clone(),
            selection: None,
        }
    }

    /// Admits and executes one query-shaped closure, doing the shared
    /// bookkeeping: default deadline, slot accounting, outcome counters.
    fn execute<T>(
        &self,
        handle: &QueryHandle,
        run: impl FnOnce(&rqo_exec::ExecOptions) -> Result<T, StopReason>,
    ) -> Result<T, ServiceError> {
        let token = handle.token().clone();
        if let Some(deadline) = self.inner.config.default_deadline {
            token.set_default_deadline(deadline);
        }
        let slot = self.inner.admit(&token)?;
        let scheduler: Arc<dyn MorselScheduler> = Arc::clone(&self.inner.pool) as _;
        let opts = self
            .inner
            .engine
            .query_exec_options(Some(token), Some(scheduler));
        // A panicking query (e.g. one built from untrusted wire bytes
        // that slipped past validation) must still be accounted for, or
        // `slots_balanced` would report a leak that is really a crash.
        // The slot itself is drop-freed either way; we count the panic
        // and re-raise it for the caller's own containment.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&opts)));
        drop(slot);
        let result = match result {
            Ok(r) => r,
            Err(payload) => {
                self.inner.stats.panicked.fetch_add(1, Ordering::SeqCst);
                std::panic::resume_unwind(payload);
            }
        };
        match result {
            Ok(value) => {
                self.inner.stats.completed.fetch_add(1, Ordering::SeqCst);
                Ok(value)
            }
            Err(reason) => {
                let cell = match reason {
                    StopReason::Cancelled => &self.inner.stats.cancelled,
                    StopReason::DeadlineExceeded => &self.inner.stats.deadline_exceeded,
                };
                cell.fetch_add(1, Ordering::SeqCst);
                Err(ServiceError::Stopped(reason))
            }
        }
    }

    /// Runs a query under `handle` through admission, the shared plan
    /// cache, and the worker pool.
    pub fn run(&self, query: &Query, handle: &QueryHandle) -> Result<QueryOutcome, ServiceError> {
        self.execute(handle, |opts| self.inner.engine.run_opts(query, opts))
    }

    /// `EXPLAIN ANALYZE` under `handle` (publishes feedback on success).
    pub fn explain_analyze(
        &self,
        query: &Query,
        handle: &QueryHandle,
    ) -> Result<AnalyzedOutcome, ServiceError> {
        self.execute(handle, |opts| {
            self.inner.engine.explain_analyze_opts(query, opts)
        })
    }

    /// Adaptive execution under `handle`.
    pub fn run_adaptive(
        &self,
        query: &Query,
        handle: &QueryHandle,
    ) -> Result<AdaptiveOutcome, ServiceError> {
        self.execute(handle, |opts| {
            self.inner.engine.run_adaptive_opts(query, opts)
        })
    }

    /// Side-effect-free `EXPLAIN ANALYZE` under `handle` (see
    /// [`Engine::analyze_quiet`]).
    pub fn analyze_quiet(
        &self,
        query: &Query,
        handle: &QueryHandle,
    ) -> Result<AnalyzedOutcome, ServiceError> {
        self.execute(handle, |opts| self.inner.engine.analyze_quiet(query, opts))
    }
}

/// One client's connection to the service.  All sessions share the
/// engine and pool; the session is the natural owner of "one client's
/// sequence of queries" (e.g. a benchmark client thread).
#[derive(Clone)]
pub struct Session {
    service: QueryService,
    /// Session-level plan-selection mode, applied to queries that carry
    /// no per-query override (`None` = the engine's system-wide mode).
    selection: Option<rqo_core::PlanSelection>,
}

impl Session {
    /// Returns a session whose queries default to `selection` mode.
    /// Queries carrying their own [`Query::with_selection`] override are
    /// untouched.
    pub fn with_selection(mut self, selection: rqo_core::PlanSelection) -> Self {
        self.selection = Some(selection);
        self
    }

    /// The query as this session will submit it: the session selection
    /// mode is stamped on unless the query already carries one.
    fn effective<'q>(&self, query: &'q Query) -> std::borrow::Cow<'q, Query> {
        match (self.selection, query.selection) {
            (Some(mode), None) => std::borrow::Cow::Owned(query.clone().with_selection(mode)),
            _ => std::borrow::Cow::Borrowed(query),
        }
    }

    /// Runs a query with a fresh (never-firing) handle.
    pub fn run(&self, query: &Query) -> Result<QueryOutcome, ServiceError> {
        self.service
            .run(&self.effective(query), &QueryHandle::new())
    }

    /// Runs a query under an explicit handle (deadline/cancellation).
    pub fn run_with(
        &self,
        query: &Query,
        handle: &QueryHandle,
    ) -> Result<QueryOutcome, ServiceError> {
        self.service.run(&self.effective(query), handle)
    }

    /// `EXPLAIN ANALYZE` with a fresh handle.
    pub fn explain_analyze(&self, query: &Query) -> Result<AnalyzedOutcome, ServiceError> {
        self.service
            .explain_analyze(&self.effective(query), &QueryHandle::new())
    }

    /// Adaptive execution with a fresh handle.
    pub fn run_adaptive(&self, query: &Query) -> Result<AdaptiveOutcome, ServiceError> {
        self.service
            .run_adaptive(&self.effective(query), &QueryHandle::new())
    }

    /// Side-effect-free `EXPLAIN ANALYZE` with a fresh handle.
    pub fn analyze_quiet(&self, query: &Query) -> Result<AnalyzedOutcome, ServiceError> {
        self.service
            .analyze_quiet(&self.effective(query), &QueryHandle::new())
    }

    /// The service this session is connected to.
    pub fn service(&self) -> &QueryService {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_engine() -> Engine {
        let data = rqo_datagen::TpchData::generate(&rqo_datagen::TpchConfig {
            scale_factor: 0.001,
            seed: 7,
        });
        Engine::new(data.into_catalog())
    }

    fn count_query() -> Query {
        use rqo_exec::AggExpr;
        Query::over(&["lineitem"]).aggregate(AggExpr::count_star("n"))
    }

    #[test]
    fn service_runs_queries_and_counts_completions() {
        let service = QueryService::new(tiny_engine(), ServiceConfig::default());
        let session = service.session();
        let outcome = session.run(&count_query()).expect("query succeeds");
        assert_eq!(outcome.rows.len(), 1);
        let stats = service.stats();
        assert_eq!((stats.admitted, stats.completed), (1, 1));
        assert!(stats.slots_balanced());
    }

    #[test]
    fn cancelled_query_reports_stopped_and_frees_slot() {
        let service = QueryService::new(tiny_engine(), ServiceConfig::default());
        let handle = QueryHandle::new();
        handle.cancel();
        let err = service.run(&count_query(), &handle).unwrap_err();
        assert_eq!(err, ServiceError::Stopped(StopReason::Cancelled));
        let stats = service.stats();
        assert_eq!((stats.admitted, stats.cancelled), (1, 1));
        assert!(stats.slots_balanced());
        // The slot was freed: the next query is admitted immediately.
        assert!(service.session().run(&count_query()).is_ok());
    }

    #[test]
    fn elapsed_deadline_reports_deadline_exceeded() {
        let service = QueryService::new(tiny_engine(), ServiceConfig::default());
        let handle = QueryHandle::with_deadline(Duration::ZERO);
        let err = service.run(&count_query(), &handle).unwrap_err();
        assert_eq!(err, ServiceError::Stopped(StopReason::DeadlineExceeded));
        assert_eq!(service.stats().deadline_exceeded, 1);
        assert!(service.stats().slots_balanced());
    }

    #[test]
    fn default_deadline_is_applied_to_plain_handles() {
        let config = ServiceConfig::default().with_default_deadline(Duration::ZERO);
        let service = QueryService::new(tiny_engine(), config);
        let err = service.session().run(&count_query()).unwrap_err();
        assert_eq!(err, ServiceError::Stopped(StopReason::DeadlineExceeded));
    }

    #[test]
    fn full_queue_rejects_immediately() {
        // One slot, zero queue: hold the slot, next arrival bounces.
        let config = ServiceConfig::default()
            .with_max_concurrent(1)
            .with_queue_capacity(0);
        let service = QueryService::new(tiny_engine(), config);
        let slot = service.inner.admit(&QueryToken::new()).expect("first slot");
        let err = service.inner.admit(&QueryToken::new()).unwrap_err();
        assert_eq!(err, ServiceError::QueueFull);
        assert_eq!(service.stats().rejected_queue_full, 1);
        drop(slot);
        assert!(service.inner.admit(&QueryToken::new()).is_ok());
    }

    #[test]
    fn queued_arrival_times_out() {
        let config = ServiceConfig::default()
            .with_max_concurrent(1)
            .with_queue_capacity(4)
            .with_queue_timeout(Duration::from_millis(10));
        let service = QueryService::new(tiny_engine(), config);
        let _slot = service.inner.admit(&QueryToken::new()).expect("first slot");
        let err = service.inner.admit(&QueryToken::new()).unwrap_err();
        assert_eq!(err, ServiceError::QueueTimeout);
        let stats = service.stats();
        assert_eq!((stats.queued, stats.rejected_queue_timeout), (1, 1));
    }

    #[test]
    fn queued_arrival_notices_its_own_cancellation() {
        let config = ServiceConfig::default()
            .with_max_concurrent(1)
            .with_queue_capacity(4)
            .with_queue_timeout(Duration::from_secs(30));
        let service = QueryService::new(tiny_engine(), config);
        let _slot = service.inner.admit(&QueryToken::new()).expect("first slot");
        let token = QueryToken::cancel_after_polls(1);
        let err = service.inner.admit(&token).unwrap_err();
        assert_eq!(err, ServiceError::Stopped(StopReason::Cancelled));
        assert_eq!(service.stats().stopped_in_queue, 1);
    }

    #[test]
    fn queued_arrival_is_admitted_when_a_slot_frees() {
        let config = ServiceConfig::default()
            .with_max_concurrent(1)
            .with_queue_capacity(4);
        let service = QueryService::new(tiny_engine(), config);
        let slot = service.inner.admit(&QueryToken::new()).expect("first slot");
        std::thread::scope(|scope| {
            let svc = &service;
            let waiter = scope.spawn(move || svc.inner.admit(&QueryToken::new()).is_ok());
            // Let the waiter enter the queue, then free the slot.
            std::thread::sleep(Duration::from_millis(20));
            drop(slot);
            assert!(
                waiter.join().expect("waiter thread"),
                "queued query admitted"
            );
        });
        let stats = service.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.queued, 1);
    }

    #[test]
    fn panicking_query_is_counted_and_frees_its_slot() {
        let service = QueryService::new(tiny_engine(), ServiceConfig::default());
        let handle = QueryHandle::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.execute::<()>(&handle, |_| panic!("boom"))
        }));
        assert!(caught.is_err(), "panic is re-raised to the caller");
        let stats = service.stats();
        assert_eq!((stats.admitted, stats.panicked), (1, 1));
        assert!(stats.slots_balanced(), "panic is accounted, not leaked");
        // The slot was freed by the guard: the next query runs fine.
        assert!(service.session().run(&count_query()).is_ok());
    }

    #[test]
    fn peak_queued_tracks_the_queue_high_water_mark() {
        let config = ServiceConfig::default()
            .with_max_concurrent(1)
            .with_queue_capacity(4)
            .with_queue_timeout(Duration::from_millis(10));
        let service = QueryService::new(tiny_engine(), config);
        let _slot = service.inner.admit(&QueryToken::new()).expect("first slot");
        // Two concurrent waiters both time out; the peak must still
        // record that they overlapped in the queue.
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let svc = &service;
                scope.spawn(move || {
                    let _ = svc.inner.admit(&QueryToken::new());
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.queued, 2);
        assert!(stats.peak_queued >= 1, "queue depth was sampled");
        let (running, waiting) = service.admission_depth();
        assert_eq!((running, waiting), (1, 0), "gauge sees the held slot");
    }

    #[test]
    fn sessions_share_the_plan_cache() {
        let service = QueryService::new(tiny_engine(), ServiceConfig::default());
        let a = service.session();
        let b = service.session();
        let q = count_query();
        a.run(&q).expect("first run");
        b.run(&q).expect("second run");
        let cache = service.engine().cache_stats();
        assert_eq!(
            (cache.misses, cache.hits, cache.entries),
            (1, 1, 1),
            "second session hits the plan the first session cached"
        );
    }
}
