//! The shared, long-lived morsel worker pool.
//!
//! One pool serves **every** concurrently admitted query.  A query's
//! executor, instead of spawning per-query scoped threads, registers a
//! *job* — "here are `n` morsels, call `run_one(i)` for each" — and the
//! pool's workers interleave morsels from all registered jobs in strict
//! **round-robin over jobs, one morsel per pick**, so a short query's
//! morsels keep flowing even while an expensive join floods the pool with
//! work.  The submitting thread participates in *its own* job's morsels
//! (never another query's), which keeps a `workers = 0` pool fully
//! functional and bounds every query's latency by its own work plus pool
//! sharing — a submitter can never get stranded executing someone else's
//! join.
//!
//! # Why a raw pointer
//!
//! The per-morsel closure borrows the executor's stack frame (input
//! batches, output slots), so it cannot be `'static` and cannot be handed
//! to long-lived worker threads as an `Arc<dyn Fn>`.  The pool instead
//! stores a type-erased raw pointer to the closure for exactly the
//! duration of the job, with a **drain protocol** making that sound:
//! [`WorkerPool::run_job`] does not return until every claimed morsel has
//! finished (`in_flight == 0`) and the job is unregistered, so no worker
//! can observe the pointer after the borrowed frame is gone.  This is the
//! same lifetime argument `std::thread::scope` makes, amortized across
//! queries.
//!
//! # Cancellation and panics
//!
//! Each claim attempt polls the job's [`QueryToken`]; a fired token stops
//! further claims immediately (in-flight morsels finish — "stops within
//! one morsel").  A panic inside a morsel marks the job stopped, is
//! carried back to the submitting thread, and re-raised there: the pool's
//! workers survive, other queries are unaffected.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use rqo_core::QueryToken;
use rqo_exec::MorselScheduler;

/// Type-erased pointer to a submitter's per-morsel closure.  Valid from
/// job registration until `run_job` unregisters the job; the drain
/// protocol guarantees no dereference outside that window.
#[derive(Clone, Copy)]
struct RunOne(*const (dyn Fn(usize) + Send + Sync));

// SAFETY: the pointee is `Fn(usize) + Send + Sync` (so calling it from a
// worker thread is fine), and the pointer itself is only dereferenced
// while the submitting frame is pinned inside `run_job`.
unsafe impl Send for RunOne {}
unsafe impl Sync for RunOne {}

impl RunOne {
    /// Erases the closure borrow's lifetime so it can sit in the job
    /// table.  Sound only under the drain protocol: the pointer must not
    /// be dereferenced after `run_job` unregisters the job.
    fn erase(run_one: &(dyn Fn(usize) + Send + Sync)) -> Self {
        // SAFETY: lifetime erasure only — layout is identical, and the
        // drain protocol pins the referent for the pointer's whole life.
        let long: &'static (dyn Fn(usize) + Send + Sync) = unsafe { std::mem::transmute(run_one) };
        RunOne(long as *const _)
    }
}

/// One registered query's outstanding morsel work.
struct Job {
    run_one: RunOne,
    token: Option<QueryToken>,
    n_morsels: usize,
    /// Next unclaimed morsel; `== n_morsels` once exhausted or stopped.
    next: usize,
    /// Morsels claimed but not yet finished.
    in_flight: usize,
    /// Token fired or a morsel panicked: no further claims.
    stopped: bool,
    /// First panic payload from any of this job's morsels, re-raised on
    /// the submitting thread.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Job {
    /// Claims the next morsel, polling the token first.  Returns `None`
    /// when the job has nothing left to claim (exhausted or stopped).
    fn claim(&mut self) -> Option<(usize, RunOne)> {
        if !self.stopped {
            if let Some(_reason) = self.token.as_ref().and_then(QueryToken::poll) {
                self.stopped = true;
            }
        }
        if self.stopped || self.next >= self.n_morsels {
            return None;
        }
        let i = self.next;
        self.next += 1;
        self.in_flight += 1;
        Some((i, self.run_one))
    }

    fn is_drained(&self) -> bool {
        (self.stopped || self.next >= self.n_morsels) && self.in_flight == 0
    }
}

#[derive(Default)]
struct PoolState {
    jobs: HashMap<u64, Job>,
    /// Registration order of live job ids — the round-robin ring.
    ring: Vec<u64>,
    /// Rotating pick position in `ring`.
    cursor: usize,
    shutdown: bool,
}

impl PoolState {
    /// Round-robin pick: starting at the cursor, the first job with a
    /// claimable morsel wins **one** morsel and the cursor moves past it,
    /// so consecutive picks rotate across queries instead of draining one
    /// job dry while others wait.
    fn claim_any(&mut self) -> Option<(u64, usize, RunOne)> {
        let n = self.ring.len();
        for k in 0..n {
            let pos = (self.cursor + k) % n;
            let id = self.ring[pos];
            let job = self.jobs.get_mut(&id).expect("ring ids are live");
            if let Some((i, run_one)) = job.claim() {
                self.cursor = (pos + 1) % n;
                return Some((id, i, run_one));
            }
        }
        None
    }

    /// Claims the next morsel of one specific job (the submitter's own).
    fn claim_own(&mut self, id: u64) -> Option<(usize, RunOne)> {
        self.jobs.get_mut(&id).expect("own job is live").claim()
    }

    /// Records a finished (or panicked) morsel; returns whether the job
    /// is now fully drained.
    fn finish(&mut self, id: u64, panic: Option<Box<dyn std::any::Any + Send>>) -> bool {
        let job = self.jobs.get_mut(&id).expect("finishing a live job");
        job.in_flight -= 1;
        if let Some(payload) = panic {
            job.stopped = true;
            if job.panic.is_none() {
                job.panic = Some(payload);
            }
        }
        job.is_drained()
    }
}

struct Shared {
    state: Mutex<PoolState>,
    /// Woken on new work, morsel completion, and shutdown.
    work: Condvar,
    next_id: AtomicU64,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        // A panicking morsel poisons nothing logically: every mutation
        // under the lock is completed before the closure runs.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The shared worker pool.  Construct once per service, wrap in an
/// [`Arc`], and hand the same instance to every query's [`ExecOptions`]
/// (via [`MorselScheduler`]); dropping the last handle shuts the workers
/// down.
///
/// [`ExecOptions`]: rqo_exec::ExecOptions
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` dedicated threads.  `0` is valid: every job is
    /// then executed entirely by its submitting thread (still through the
    /// same claim protocol, so cancellation semantics are identical).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            next_id: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rqo-pool-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Dedicated worker threads (not counting submitters).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            // A worker can only panic on a poisoned-beyond-recovery
            // mutex; surface that instead of hiding it.
            if let Err(payload) = handle.join() {
                resume_unwind(payload);
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (id, i, run_one) = {
            let mut state = shared.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(claim) = state.claim_any() {
                    break claim;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: the job is registered (we hold a claim on it), so the
        // submitter is pinned inside `run_job` and the closure's frame is
        // alive.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*run_one.0)(i) }));
        let mut state = shared.lock();
        let drained = state.finish(id, result.err());
        drop(state);
        if drained {
            // The submitter may be waiting for the last straggler.
            shared.work.notify_all();
        }
    }
}

impl MorselScheduler for WorkerPool {
    fn run_job(
        &self,
        token: Option<&QueryToken>,
        n_morsels: usize,
        run_one: &(dyn Fn(usize) + Send + Sync),
    ) -> bool {
        if n_morsels == 0 {
            return token.and_then(|t| t.poll()).is_none();
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = self.shared.lock();
            state.jobs.insert(
                id,
                Job {
                    run_one: RunOne::erase(run_one),
                    token: token.cloned(),
                    n_morsels,
                    next: 0,
                    in_flight: 0,
                    stopped: false,
                    panic: None,
                },
            );
            state.ring.push(id);
        }
        self.shared.work.notify_all();

        // Participate in our own job only: claim-run until exhausted.
        loop {
            let claim = self.shared.lock().claim_own(id);
            let Some((i, _)) = claim else { break };
            let result = catch_unwind(AssertUnwindSafe(|| run_one(i)));
            let mut state = self.shared.lock();
            state.finish(id, result.err());
        }

        // Drain: wait for workers to finish the morsels they claimed,
        // then unregister — after this point the closure pointer is dead
        // and no worker can be holding it.
        let job = {
            let mut state = self.shared.lock();
            while !state.jobs.get(&id).expect("own job is live").is_drained() {
                state = self
                    .shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let job = state.jobs.remove(&id).expect("own job is live");
            state.ring.retain(|&j| j != id);
            if state.cursor >= state.ring.len() {
                state.cursor = 0;
            }
            job
        };
        if let Some(payload) = job.panic {
            resume_unwind(payload);
        }
        !job.stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn collect_indices(
        pool: &WorkerPool,
        token: Option<&QueryToken>,
        n: usize,
    ) -> (bool, Vec<usize>) {
        let seen = Mutex::new(Vec::new());
        let run_one = |i: usize| seen.lock().unwrap_or_else(PoisonError::into_inner).push(i);
        let complete = pool.run_job(token, n, &run_one);
        let mut indices = seen.into_inner().unwrap_or_else(PoisonError::into_inner);
        indices.sort_unstable();
        (complete, indices)
    }

    #[test]
    fn every_morsel_runs_exactly_once() {
        for workers in [0usize, 1, 3] {
            let pool = WorkerPool::new(workers);
            let (complete, indices) = collect_indices(&pool, None, 64);
            assert!(complete, "workers={workers}");
            assert_eq!(indices, (0..64).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn empty_job_is_a_noop() {
        let pool = WorkerPool::new(1);
        assert!(pool.run_job(None, 0, &|_| panic!("no morsels to run")));
        let fired = QueryToken::cancel_after_polls(0);
        assert!(!pool.run_job(Some(&fired), 0, &|_| {}));
    }

    #[test]
    fn round_robin_rotates_one_morsel_per_pick() {
        // Policy test on the claim logic itself — no threads, no timing.
        let noop: &(dyn Fn(usize) + Send + Sync) = &|_| {};
        let mut state = PoolState::default();
        for id in [10u64, 20, 30] {
            state.jobs.insert(
                id,
                Job {
                    run_one: RunOne(noop as *const _),
                    token: None,
                    n_morsels: 3,
                    next: 0,
                    in_flight: 0,
                    stopped: false,
                    panic: None,
                },
            );
            state.ring.push(id);
        }
        let picks: Vec<u64> =
            std::iter::from_fn(|| state.claim_any().map(|(id, _, _)| id)).collect();
        assert_eq!(picks, vec![10, 20, 30, 10, 20, 30, 10, 20, 30]);
    }

    #[test]
    fn exhausted_jobs_are_skipped_in_rotation() {
        let noop: &(dyn Fn(usize) + Send + Sync) = &|_| {};
        let mut state = PoolState::default();
        for (id, n) in [(1u64, 1usize), (2, 3)] {
            state.jobs.insert(
                id,
                Job {
                    run_one: RunOne(noop as *const _),
                    token: None,
                    n_morsels: n,
                    next: 0,
                    in_flight: 0,
                    stopped: false,
                    panic: None,
                },
            );
            state.ring.push(id);
        }
        let picks: Vec<u64> =
            std::iter::from_fn(|| state.claim_any().map(|(id, _, _)| id)).collect();
        assert_eq!(picks, vec![1, 2, 2, 2], "job 1 drains, job 2 keeps flowing");
    }

    #[test]
    fn cancelled_job_stops_and_reports_incomplete() {
        let pool = WorkerPool::new(0);
        // With 0 workers the submitter runs morsels alone: one poll per
        // claim, so cancel-after-3-polls runs exactly 3 morsels.
        let token = QueryToken::cancel_after_polls(3);
        let (complete, indices) = collect_indices(&pool, Some(&token), 100);
        assert!(!complete);
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn pre_cancelled_job_runs_nothing() {
        let pool = WorkerPool::new(2);
        let token = QueryToken::new();
        token.cancel();
        let (complete, indices) = collect_indices(&pool, Some(&token), 16);
        assert!(!complete);
        assert!(indices.is_empty());
    }

    #[test]
    fn morsel_panic_propagates_to_submitter_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let boom = |i: usize| {
            if i == 3 {
                panic!("morsel 3 exploded");
            }
        };
        let caught = catch_unwind(AssertUnwindSafe(|| pool.run_job(None, 8, &boom)));
        let payload = caught.expect_err("panic must reach the submitter");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(message.contains("morsel 3 exploded"), "got: {message}");

        // The pool is still healthy for the next query.
        let (complete, indices) = collect_indices(&pool, None, 32);
        assert!(complete);
        assert_eq!(indices.len(), 32);
    }

    #[test]
    fn poisoned_pool_lock_recovers() {
        let pool = WorkerPool::new(2);
        // Poison the pool's state mutex: a thread panics while holding
        // it.  (Workers only ever mutate state *before* running user
        // code, so logical state is still consistent — exactly the
        // situation `PoisonError::into_inner` recovery is for.)
        let shared = Arc::clone(&pool.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.state.lock().unwrap();
            panic!("poison the pool lock");
        })
        .join();
        assert!(pool.shared.state.is_poisoned(), "mutex really is poisoned");
        // The pool must keep scheduling regardless.
        let (complete, indices) = collect_indices(&pool, None, 16);
        assert!(complete, "job ran to completion on a poisoned lock");
        assert_eq!(indices, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn many_submitters_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    for _ in 0..8 {
                        let counted = AtomicUsize::new(0);
                        let run_one = |_i: usize| {
                            counted.fetch_add(1, Ordering::Relaxed);
                        };
                        assert!(pool.run_job(None, 16, &run_one));
                        assert_eq!(counted.load(Ordering::Relaxed), 16);
                        total.fetch_add(16, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 8 * 16);
    }
}
