//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! ```text
//! frame := u32 length (LE, length of tag + payload) | u8 tag | payload
//! ```
//!
//! Requests carry a full query spec (tables, predicates, aggregates,
//! grouping, per-query threshold hint and plan-selection mode), an
//! execution mode, and a deadline; responses stream result batches
//! followed by a completion summary, or a typed error.  The encoding is
//! hand-rolled little-endian with no external dependencies.
//!
//! # Decoding is defensive
//!
//! Every byte of a frame comes from an **untrusted** peer, so decoding
//! must never panic, never overflow the stack, and never allocate
//! unboundedly:
//!
//! * frame lengths are capped at [`MAX_FRAME_LEN`] ([`ProtoError::Oversized`]);
//! * expression trees are depth-limited ([`ProtoError::TooDeep`]);
//! * collection counts are validated against the bytes actually present
//!   before any allocation ([`ProtoError::Truncated`]);
//! * a frame whose payload outlives its message is rejected
//!   ([`ProtoError::TrailingBytes`]) — no silent resynchronization;
//! * values that would violate invariants downstream (a confidence
//!   threshold outside `(0, 1)`, an empty table list, a `SUM` without a
//!   column) are rejected at decode time, **before** they can reach code
//!   that asserts them.
//!
//! The round-trip property (`decode(encode(m)) == m`) and the
//! never-panics property over arbitrary byte soup are pinned by
//! `tests/proto_roundtrip.rs`.

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

use rqo_core::{ConfidenceThreshold, PlanSelection};
use rqo_exec::{AggExpr, AggFunc};
use rqo_expr::{BinaryOp, Expr, UnaryOp};
use rqo_optimizer::Query;
use rqo_storage::Value;

/// Hard cap on the length field of a single frame (tag + payload).
/// Anything larger is rejected before allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Maximum expression-tree nesting depth accepted by the decoder.  Deep
/// enough for any real predicate; shallow enough that recursion over an
/// adversarial frame cannot overflow the stack.
pub const MAX_EXPR_DEPTH: usize = 64;

/// Rows per [`Response::Batch`] frame when a server streams a result.
pub const DEFAULT_BATCH_ROWS: usize = 256;

// Client → server frame tags.
const TAG_HELLO: u8 = 0x01;
const TAG_RUN: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_INSERT: u8 = 0x04;
// Server → client frame tags.
const TAG_BATCH: u8 = 0x81;
const TAG_DONE: u8 = 0x82;
const TAG_ERROR: u8 = 0x83;
const TAG_PONG: u8 = 0x84;
const TAG_INSERT_OK: u8 = 0x85;

/// Why a frame (or a stream of frames) could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The stream ended mid-frame (inside the header or the payload).
    Truncated,
    /// The frame length field exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// The frame length field was zero (no room for even a tag).
    EmptyFrame,
    /// An unknown frame tag.
    UnknownTag(u8),
    /// An unknown enum discriminant inside a payload (`what` names the
    /// enum being decoded).
    BadDiscriminant {
        /// Which wire enum the byte was decoding into.
        what: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// An expression tree nested deeper than [`MAX_EXPR_DEPTH`].
    TooDeep,
    /// A frame's payload continued past the end of its message.
    TrailingBytes(usize),
    /// A decoded value violates a query invariant (`what` says which).
    Invalid(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => f.write_str("truncated frame"),
            ProtoError::Oversized(n) => {
                write!(f, "frame length {n} exceeds cap {MAX_FRAME_LEN}")
            }
            ProtoError::EmptyFrame => f.write_str("zero-length frame"),
            ProtoError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            ProtoError::BadDiscriminant { what, value } => {
                write!(f, "bad {what} discriminant {value:#04x}")
            }
            ProtoError::BadUtf8 => f.write_str("string payload is not UTF-8"),
            ProtoError::TooDeep => {
                write!(f, "expression nesting exceeds {MAX_EXPR_DEPTH}")
            }
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
            ProtoError::Invalid(what) => write!(f, "invalid message: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Typed error codes a server can return in a [`Response::Error`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The admission queue was full on arrival.
    QueueFull,
    /// The query waited out the admission queue timeout.
    QueueTimeout,
    /// The query was cancelled (client disconnect or explicit cancel).
    Cancelled,
    /// The query's deadline passed while queued or running.
    DeadlineExceeded,
    /// The tenant exceeded its per-tenant in-flight quota.
    TenantQuota,
    /// The peer sent a malformed frame; the connection will close.
    Protocol,
    /// The query referenced unknown tables/columns or was otherwise
    /// semantically invalid for this catalog.
    BadQuery,
    /// The server's connection limit was reached.
    ConnectionLimit,
    /// The server failed internally while executing the query.
    Internal,
}

impl ErrorCode {
    fn to_wire(self) -> u8 {
        match self {
            ErrorCode::QueueFull => 1,
            ErrorCode::QueueTimeout => 2,
            ErrorCode::Cancelled => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::TenantQuota => 5,
            ErrorCode::Protocol => 6,
            ErrorCode::BadQuery => 7,
            ErrorCode::ConnectionLimit => 8,
            ErrorCode::Internal => 9,
        }
    }

    fn from_wire(b: u8) -> Result<Self, ProtoError> {
        Ok(match b {
            1 => ErrorCode::QueueFull,
            2 => ErrorCode::QueueTimeout,
            3 => ErrorCode::Cancelled,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::TenantQuota,
            6 => ErrorCode::Protocol,
            7 => ErrorCode::BadQuery,
            8 => ErrorCode::ConnectionLimit,
            9 => ErrorCode::Internal,
            value => {
                return Err(ProtoError::BadDiscriminant {
                    what: "error code",
                    value,
                })
            }
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::QueueTimeout => "queue-timeout",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::TenantQuota => "tenant-quota",
            ErrorCode::Protocol => "protocol",
            ErrorCode::BadQuery => "bad-query",
            ErrorCode::ConnectionLimit => "connection-limit",
            ErrorCode::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// How the server should execute a request's query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunMode {
    /// Plain execution through the plan cache ([`Session::run_with`]).
    ///
    /// [`Session::run_with`]: crate::Session::run_with
    #[default]
    Run,
    /// Mid-query adaptive re-optimization
    /// ([`QueryService::run_adaptive`]).
    ///
    /// [`QueryService::run_adaptive`]: crate::QueryService::run_adaptive
    Adaptive,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Declares the connection's tenant (for per-tenant admission
    /// quotas).  Optional; connections that never say hello run under
    /// the anonymous tenant `""`.
    Hello {
        /// Tenant identifier.
        tenant: String,
    },
    /// Submits one query.
    Run {
        /// Client-chosen request id, echoed on every response frame.
        id: u64,
        /// Execution mode.
        mode: RunMode,
        /// Per-query deadline in milliseconds (`0` = none).
        deadline_ms: u64,
        /// The query itself.
        query: Query,
    },
    /// Liveness probe; the server echoes the nonce in a
    /// [`Response::Pong`].
    Ping {
        /// Echoed opaque value.
        nonce: u64,
    },
    /// Appends a batch of rows to one table.  The batch is atomic:
    /// either every row is validated against the table's schema and
    /// ingested, or none are and the server answers with
    /// [`ErrorCode::BadQuery`].
    Insert {
        /// Client-chosen request id, echoed on the reply frame.
        id: u64,
        /// Destination table.
        table: String,
        /// The rows, each in schema column order.
        rows: Vec<Vec<Value>>,
    },
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One chunk of result rows for request `id`.  Zero or more
    /// precede the [`Response::Done`] frame; rows arrive in result
    /// order.
    Batch {
        /// Request id this batch belongs to.
        id: u64,
        /// Result rows.
        rows: Vec<Vec<Value>>,
    },
    /// Terminates a successful request.
    Done {
        /// Request id.
        id: u64,
        /// Output column names.
        columns: Vec<String>,
        /// Total rows streamed across all batches (client-side
        /// integrity check).
        total_rows: u64,
        /// Simulated execution cost in seconds.
        simulated_seconds: f64,
        /// The optimizer's own estimate in seconds.
        estimated_seconds: f64,
        /// Mid-query re-plans (always `0` under [`RunMode::Run`]).
        replans: u64,
    },
    /// Terminates a failed request (or, with `id == 0`, reports a
    /// connection-level failure such as a protocol error).
    Error {
        /// Request id (`0` for connection-level errors).
        id: u64,
        /// Typed error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Reply to a [`Request::Ping`].
    Pong {
        /// The request's nonce.
        nonce: u64,
    },
    /// Terminates a successful [`Request::Insert`].
    InsertOk {
        /// Request id.
        id: u64,
        /// Rows ingested by this request.
        rows_inserted: u64,
        /// The table's total row count after the insert.
        table_rows: u64,
    },
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

/// Reads one frame body (tag + payload) from `r`.
///
/// Returns `Ok(None)` on a clean EOF **at a frame boundary** (the peer
/// closed between messages).  EOF inside a header or payload is a
/// [`ProtoError::Truncated`]; I/O errors other than EOF surface as
/// `Err(Frame::Io)`.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameReadError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameReadError::Proto(ProtoError::Truncated))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(FrameReadError::Proto(ProtoError::EmptyFrame));
    }
    if len > MAX_FRAME_LEN {
        return Err(FrameReadError::Proto(ProtoError::Oversized(len)));
    }
    let mut body = vec![0u8; len as usize];
    match r.read_exact(&mut body) {
        Ok(()) => Ok(Some(body)),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            Err(FrameReadError::Proto(ProtoError::Truncated))
        }
        Err(e) => Err(FrameReadError::Io(e)),
    }
}

/// Why [`read_frame`] failed: the peer broke the protocol, or the
/// transport itself failed.
#[derive(Debug)]
pub enum FrameReadError {
    /// The bytes violate the protocol.
    Proto(ProtoError),
    /// The socket failed.
    Io(io::Error),
}

impl fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReadError::Proto(e) => write!(f, "protocol error: {e}"),
            FrameReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

/// Wraps an encoded frame body in its length prefix and writes it.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(!body.is_empty() && body.len() <= MAX_FRAME_LEN as usize);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Self {
        Enc { buf: vec![tag] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Float(f) => {
                self.u8(2);
                self.f64(*f);
            }
            Value::Date(d) => {
                self.u8(3);
                self.i32(*d);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::Bool(b) => {
                self.u8(5);
                self.u8(*b as u8);
            }
        }
    }
    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Col(name) => {
                self.u8(0);
                self.str(name);
            }
            Expr::ColIdx(idx, name) => {
                self.u8(1);
                self.u32(*idx as u32);
                self.str(name);
            }
            Expr::Lit(v) => {
                self.u8(2);
                self.value(v);
            }
            Expr::Binary { op, left, right } => {
                self.u8(3);
                self.u8(binary_op_to_wire(*op));
                self.expr(left);
                self.expr(right);
            }
            Expr::Unary { op, expr } => {
                self.u8(4);
                self.u8(unary_op_to_wire(*op));
                self.expr(expr);
            }
            Expr::Between { expr, lo, hi } => {
                self.u8(5);
                self.expr(expr);
                self.expr(lo);
                self.expr(hi);
            }
            Expr::Like { expr, pattern } => {
                self.u8(6);
                self.expr(expr);
                self.str(pattern);
            }
            Expr::InList { expr, list } => {
                self.u8(7);
                self.expr(expr);
                self.u32(list.len() as u32);
                for v in list {
                    self.value(v);
                }
            }
        }
    }
    fn agg(&mut self, a: &AggExpr) {
        self.u8(match a.func {
            AggFunc::Sum => 0,
            AggFunc::Count => 1,
            AggFunc::Avg => 2,
            AggFunc::Min => 3,
            AggFunc::Max => 4,
        });
        match &a.column {
            Some(c) => {
                self.u8(1);
                self.str(c);
            }
            None => self.u8(0),
        }
        self.str(&a.alias);
    }
    fn query(&mut self, q: &Query) {
        self.u32(q.tables.len() as u32);
        for t in &q.tables {
            self.str(t);
        }
        self.u32(q.predicates.len() as u32);
        for (t, e) in &q.predicates {
            self.str(t);
            self.expr(e);
        }
        self.u32(q.group_by.len() as u32);
        for g in &q.group_by {
            self.str(g);
        }
        self.u32(q.aggregates.len() as u32);
        for a in &q.aggregates {
            self.agg(a);
        }
        match q.hint {
            Some(t) => {
                self.u8(1);
                self.f64(t.value());
            }
            None => self.u8(0),
        }
        self.u8(match q.selection {
            None => 0,
            Some(PlanSelection::Quantile) => 1,
            Some(PlanSelection::ExpectedPenalty) => 2,
        });
    }
}

fn binary_op_to_wire(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Eq => 0,
        BinaryOp::Ne => 1,
        BinaryOp::Lt => 2,
        BinaryOp::Le => 3,
        BinaryOp::Gt => 4,
        BinaryOp::Ge => 5,
        BinaryOp::And => 6,
        BinaryOp::Or => 7,
        BinaryOp::Add => 8,
        BinaryOp::Sub => 9,
        BinaryOp::Mul => 10,
        BinaryOp::Div => 11,
    }
}

fn unary_op_to_wire(op: UnaryOp) -> u8 {
    match op {
        UnaryOp::Not => 0,
        UnaryOp::Neg => 1,
        UnaryOp::IsNull => 2,
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i32(&mut self) -> Result<i32, ProtoError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }
    fn str(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }
    /// A collection count, validated against the bytes actually left in
    /// the frame (`min_elem_bytes` per element) before any allocation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(ProtoError::Truncated);
        }
        Ok(n)
    }
    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return Err(ProtoError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
    fn value(&mut self) -> Result<Value, ProtoError> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(self.f64()?),
            3 => Value::Date(self.i32()?),
            4 => Value::Str(Arc::from(self.str()?.as_str())),
            5 => Value::Bool(self.u8()? != 0),
            value => {
                return Err(ProtoError::BadDiscriminant {
                    what: "value",
                    value,
                })
            }
        })
    }
    fn expr(&mut self, depth: usize) -> Result<Expr, ProtoError> {
        if depth > MAX_EXPR_DEPTH {
            return Err(ProtoError::TooDeep);
        }
        Ok(match self.u8()? {
            0 => Expr::Col(self.str()?),
            1 => {
                let idx = self.u32()? as usize;
                Expr::ColIdx(idx, self.str()?)
            }
            2 => Expr::Lit(self.value()?),
            3 => {
                let op = self.binary_op()?;
                let left = Box::new(self.expr(depth + 1)?);
                let right = Box::new(self.expr(depth + 1)?);
                Expr::Binary { op, left, right }
            }
            4 => {
                let op = self.unary_op()?;
                let expr = Box::new(self.expr(depth + 1)?);
                Expr::Unary { op, expr }
            }
            5 => {
                let expr = Box::new(self.expr(depth + 1)?);
                let lo = Box::new(self.expr(depth + 1)?);
                let hi = Box::new(self.expr(depth + 1)?);
                Expr::Between { expr, lo, hi }
            }
            6 => {
                let expr = Box::new(self.expr(depth + 1)?);
                let pattern = self.str()?;
                Expr::Like { expr, pattern }
            }
            7 => {
                let expr = Box::new(self.expr(depth + 1)?);
                let n = self.count(1)?;
                let mut list = Vec::with_capacity(n);
                for _ in 0..n {
                    list.push(self.value()?);
                }
                Expr::InList { expr, list }
            }
            value => {
                return Err(ProtoError::BadDiscriminant {
                    what: "expression",
                    value,
                })
            }
        })
    }
    fn binary_op(&mut self) -> Result<BinaryOp, ProtoError> {
        Ok(match self.u8()? {
            0 => BinaryOp::Eq,
            1 => BinaryOp::Ne,
            2 => BinaryOp::Lt,
            3 => BinaryOp::Le,
            4 => BinaryOp::Gt,
            5 => BinaryOp::Ge,
            6 => BinaryOp::And,
            7 => BinaryOp::Or,
            8 => BinaryOp::Add,
            9 => BinaryOp::Sub,
            10 => BinaryOp::Mul,
            11 => BinaryOp::Div,
            value => {
                return Err(ProtoError::BadDiscriminant {
                    what: "binary op",
                    value,
                })
            }
        })
    }
    fn unary_op(&mut self) -> Result<UnaryOp, ProtoError> {
        Ok(match self.u8()? {
            0 => UnaryOp::Not,
            1 => UnaryOp::Neg,
            2 => UnaryOp::IsNull,
            value => {
                return Err(ProtoError::BadDiscriminant {
                    what: "unary op",
                    value,
                })
            }
        })
    }
    fn agg(&mut self) -> Result<AggExpr, ProtoError> {
        let func = match self.u8()? {
            0 => AggFunc::Sum,
            1 => AggFunc::Count,
            2 => AggFunc::Avg,
            3 => AggFunc::Min,
            4 => AggFunc::Max,
            value => {
                return Err(ProtoError::BadDiscriminant {
                    what: "aggregate function",
                    value,
                })
            }
        };
        let column = match self.u8()? {
            0 => None,
            1 => Some(self.str()?),
            value => {
                return Err(ProtoError::BadDiscriminant {
                    what: "aggregate column flag",
                    value,
                })
            }
        };
        if column.is_none() && func != AggFunc::Count {
            return Err(ProtoError::Invalid("non-COUNT aggregate without a column"));
        }
        let alias = self.str()?;
        Ok(AggExpr {
            func,
            column,
            alias,
        })
    }
    fn query(&mut self) -> Result<Query, ProtoError> {
        let n_tables = self.count(5)?;
        if n_tables == 0 {
            return Err(ProtoError::Invalid("query with no tables"));
        }
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            tables.push(self.str()?);
        }
        let n_preds = self.count(6)?;
        let mut predicates = Vec::with_capacity(n_preds);
        for _ in 0..n_preds {
            let t = self.str()?;
            if !tables.contains(&t) {
                return Err(ProtoError::Invalid("predicate on unlisted table"));
            }
            let e = self.expr(0)?;
            predicates.push((t, e));
        }
        let n_group = self.count(5)?;
        let mut group_by = Vec::with_capacity(n_group);
        for _ in 0..n_group {
            group_by.push(self.str()?);
        }
        let n_aggs = self.count(7)?;
        let mut aggregates = Vec::with_capacity(n_aggs);
        for _ in 0..n_aggs {
            aggregates.push(self.agg()?);
        }
        let hint = match self.u8()? {
            0 => None,
            1 => {
                let t = self.f64()?;
                if !(t.is_finite() && t > 0.0 && t < 1.0) {
                    return Err(ProtoError::Invalid("confidence hint outside (0, 1)"));
                }
                Some(ConfidenceThreshold::new(t))
            }
            value => {
                return Err(ProtoError::BadDiscriminant {
                    what: "hint flag",
                    value,
                })
            }
        };
        let selection = match self.u8()? {
            0 => None,
            1 => Some(PlanSelection::Quantile),
            2 => Some(PlanSelection::ExpectedPenalty),
            value => {
                return Err(ProtoError::BadDiscriminant {
                    what: "plan selection",
                    value,
                })
            }
        };
        Ok(Query {
            tables,
            predicates,
            group_by,
            aggregates,
            hint,
            selection,
        })
    }
}

impl Request {
    /// Encodes this request as one frame body (tag + payload, no length
    /// prefix — pair with [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello { tenant } => {
                let mut e = Enc::new(TAG_HELLO);
                e.str(tenant);
                e.buf
            }
            Request::Run {
                id,
                mode,
                deadline_ms,
                query,
            } => {
                let mut e = Enc::new(TAG_RUN);
                e.u64(*id);
                e.u8(match mode {
                    RunMode::Run => 0,
                    RunMode::Adaptive => 1,
                });
                e.u64(*deadline_ms);
                e.query(query);
                e.buf
            }
            Request::Ping { nonce } => {
                let mut e = Enc::new(TAG_PING);
                e.u64(*nonce);
                e.buf
            }
            Request::Insert { id, table, rows } => {
                let mut e = Enc::new(TAG_INSERT);
                e.u64(*id);
                e.str(table);
                e.u32(rows.len() as u32);
                for row in rows {
                    e.u32(row.len() as u32);
                    for v in row {
                        e.value(v);
                    }
                }
                e.buf
            }
        }
    }

    /// Decodes one frame body into a request.  Never panics: every
    /// malformed input returns a [`ProtoError`].
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let mut d = Dec::new(body);
        let req = match d.u8()? {
            TAG_HELLO => Request::Hello { tenant: d.str()? },
            TAG_RUN => {
                let id = d.u64()?;
                let mode = match d.u8()? {
                    0 => RunMode::Run,
                    1 => RunMode::Adaptive,
                    value => {
                        return Err(ProtoError::BadDiscriminant {
                            what: "run mode",
                            value,
                        })
                    }
                };
                let deadline_ms = d.u64()?;
                let query = d.query()?;
                Request::Run {
                    id,
                    mode,
                    deadline_ms,
                    query,
                }
            }
            TAG_PING => Request::Ping { nonce: d.u64()? },
            TAG_INSERT => {
                let id = d.u64()?;
                let table = d.str()?;
                if table.is_empty() {
                    return Err(ProtoError::Invalid("insert into unnamed table"));
                }
                let n_rows = d.count(4)?;
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let n_cols = d.count(1)?;
                    let mut row = Vec::with_capacity(n_cols);
                    for _ in 0..n_cols {
                        row.push(d.value()?);
                    }
                    rows.push(row);
                }
                Request::Insert { id, table, rows }
            }
            t => return Err(ProtoError::UnknownTag(t)),
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes this response as one frame body (pair with
    /// [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Batch { id, rows } => {
                let mut e = Enc::new(TAG_BATCH);
                e.u64(*id);
                e.u32(rows.len() as u32);
                for row in rows {
                    e.u32(row.len() as u32);
                    for v in row {
                        e.value(v);
                    }
                }
                e.buf
            }
            Response::Done {
                id,
                columns,
                total_rows,
                simulated_seconds,
                estimated_seconds,
                replans,
            } => {
                let mut e = Enc::new(TAG_DONE);
                e.u64(*id);
                e.u32(columns.len() as u32);
                for c in columns {
                    e.str(c);
                }
                e.u64(*total_rows);
                e.f64(*simulated_seconds);
                e.f64(*estimated_seconds);
                e.u64(*replans);
                e.buf
            }
            Response::Error { id, code, message } => {
                let mut e = Enc::new(TAG_ERROR);
                e.u64(*id);
                e.u8(code.to_wire());
                e.str(message);
                e.buf
            }
            Response::Pong { nonce } => {
                let mut e = Enc::new(TAG_PONG);
                e.u64(*nonce);
                e.buf
            }
            Response::InsertOk {
                id,
                rows_inserted,
                table_rows,
            } => {
                let mut e = Enc::new(TAG_INSERT_OK);
                e.u64(*id);
                e.u64(*rows_inserted);
                e.u64(*table_rows);
                e.buf
            }
        }
    }

    /// Decodes one frame body into a response.  Never panics.
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let mut d = Dec::new(body);
        let resp = match d.u8()? {
            TAG_BATCH => {
                let id = d.u64()?;
                let n_rows = d.count(4)?;
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let n_cols = d.count(1)?;
                    let mut row = Vec::with_capacity(n_cols);
                    for _ in 0..n_cols {
                        row.push(d.value()?);
                    }
                    rows.push(row);
                }
                Response::Batch { id, rows }
            }
            TAG_DONE => {
                let id = d.u64()?;
                let n_cols = d.count(4)?;
                let mut columns = Vec::with_capacity(n_cols);
                for _ in 0..n_cols {
                    columns.push(d.str()?);
                }
                Response::Done {
                    id,
                    columns,
                    total_rows: d.u64()?,
                    simulated_seconds: d.f64()?,
                    estimated_seconds: d.f64()?,
                    replans: d.u64()?,
                }
            }
            TAG_ERROR => {
                let id = d.u64()?;
                let code = ErrorCode::from_wire(d.u8()?)?;
                let message = d.str()?;
                Response::Error { id, code, message }
            }
            TAG_PONG => Response::Pong { nonce: d.u64()? },
            TAG_INSERT_OK => Response::InsertOk {
                id: d.u64()?,
                rows_inserted: d.u64()?,
                table_rows: d.u64()?,
            },
            t => return Err(ProtoError::UnknownTag(t)),
        };
        d.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) {
        let body = req.encode();
        let back = Request::decode(&body).expect("decodes");
        assert_eq!(&back, req);
    }

    fn roundtrip_response(resp: &Response) {
        let body = resp.encode();
        let back = Response::decode(&body).expect("decodes");
        assert_eq!(&back, resp);
    }

    fn sample_query() -> Query {
        Query::over(&["lineitem", "orders"])
            .filter(
                "lineitem",
                Expr::col("l_quantity")
                    .between(Expr::lit(1i64), Expr::lit(10i64))
                    .and(Expr::col("l_comment").like("x%")),
            )
            .filter(
                "orders",
                Expr::col("o_totalprice")
                    .gt(Expr::lit(0.5))
                    .or(Expr::col("o_orderpriority")
                        .in_list(vec![Value::str("1-URGENT"), Value::Null])),
            )
            .group(&["l_partkey"])
            .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
            .aggregate(AggExpr::count_star("n"))
            .with_hint(ConfidenceThreshold::new(0.8))
            .with_selection(PlanSelection::ExpectedPenalty)
    }

    #[test]
    fn request_frames_roundtrip() {
        roundtrip_request(&Request::Hello {
            tenant: "acme".into(),
        });
        roundtrip_request(&Request::Ping { nonce: 0xDEAD });
        roundtrip_request(&Request::Run {
            id: 7,
            mode: RunMode::Adaptive,
            deadline_ms: 1500,
            query: sample_query(),
        });
        roundtrip_request(&Request::Insert {
            id: 9,
            table: "lineitem".into(),
            rows: vec![
                vec![Value::Int(1), Value::str("a"), Value::Float(0.5)],
                vec![Value::Int(2), Value::str("b"), Value::Float(1.5)],
            ],
        });
        // An empty batch is wire-legal (the server treats it as a no-op).
        roundtrip_request(&Request::Insert {
            id: 10,
            table: "part".into(),
            rows: vec![],
        });
    }

    #[test]
    fn response_frames_roundtrip() {
        roundtrip_response(&Response::Batch {
            id: 3,
            rows: vec![
                vec![Value::Int(1), Value::Null, Value::Float(2.5)],
                vec![Value::Date(9000), Value::str("hi"), Value::Bool(true)],
            ],
        });
        roundtrip_response(&Response::Done {
            id: 3,
            columns: vec!["revenue".into(), "n".into()],
            total_rows: 2,
            simulated_seconds: 0.25,
            estimated_seconds: 0.5,
            replans: 1,
        });
        roundtrip_response(&Response::Error {
            id: 0,
            code: ErrorCode::Protocol,
            message: "bad frame".into(),
        });
        roundtrip_response(&Response::Pong { nonce: 1 });
        roundtrip_response(&Response::InsertOk {
            id: 9,
            rows_inserted: 2,
            table_rows: 6007,
        });
    }

    #[test]
    fn insert_decode_is_defensive() {
        // Unnamed table.
        let mut e = Enc::new(TAG_INSERT);
        e.u64(1);
        e.str("");
        e.u32(0);
        assert_eq!(
            Request::decode(&e.buf),
            Err(ProtoError::Invalid("insert into unnamed table"))
        );

        // A row count that cannot fit the remaining bytes is rejected
        // before allocation.
        let mut e = Enc::new(TAG_INSERT);
        e.u64(1);
        e.str("t");
        e.u32(u32::MAX);
        assert_eq!(Request::decode(&e.buf), Err(ProtoError::Truncated));

        // Truncated mid-value.
        let mut body = Request::Insert {
            id: 2,
            table: "t".into(),
            rows: vec![vec![Value::Int(5)]],
        }
        .encode();
        body.truncate(body.len() - 3);
        assert_eq!(Request::decode(&body), Err(ProtoError::Truncated));

        // Trailing bytes after a complete message.
        let mut body = Request::Insert {
            id: 3,
            table: "t".into(),
            rows: vec![],
        }
        .encode();
        body.push(0);
        assert_eq!(Request::decode(&body), Err(ProtoError::TrailingBytes(1)));
    }

    #[test]
    fn frame_io_roundtrip_and_clean_eof() {
        let req = Request::Ping { nonce: 42 };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        write_frame(&mut wire, &req.encode()).unwrap();
        let mut cursor = io::Cursor::new(wire);
        for _ in 0..2 {
            let body = read_frame(&mut cursor).unwrap().expect("a frame");
            assert_eq!(Request::decode(&body).unwrap(), req);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_typed_errors() {
        // EOF inside the header.
        let mut cursor = io::Cursor::new(vec![1u8, 0]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameReadError::Proto(ProtoError::Truncated))
        ));
        // EOF inside the payload.
        let mut cursor = io::Cursor::new(vec![10u8, 0, 0, 0, 1, 2]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameReadError::Proto(ProtoError::Truncated))
        ));
        // Oversized length field: rejected before allocation.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut cursor = io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameReadError::Proto(ProtoError::Oversized(_)))
        ));
        // Zero-length frame.
        let mut cursor = io::Cursor::new(vec![0u8, 0, 0, 0]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameReadError::Proto(ProtoError::EmptyFrame))
        ));
    }

    #[test]
    fn decode_rejects_invariant_violations() {
        // Empty table list.
        let mut e = Enc::new(TAG_RUN);
        e.u64(1);
        e.u8(0);
        e.u64(0);
        e.u32(0); // zero tables
        assert_eq!(
            Request::decode(&e.buf),
            Err(ProtoError::Invalid("query with no tables"))
        );

        // Trailing bytes after a valid message.
        let mut body = Request::Ping { nonce: 5 }.encode();
        body.push(0xFF);
        assert_eq!(Request::decode(&body), Err(ProtoError::TrailingBytes(1)));

        // Hostile nesting depth: one deep chain of NOTs.
        let mut e = Enc::new(0);
        for _ in 0..(MAX_EXPR_DEPTH + 2) {
            e.u8(4); // Unary
            e.u8(0); // Not
        }
        let mut d = Dec::new(&e.buf[1..]);
        assert_eq!(d.expr(0), Err(ProtoError::TooDeep));

        // A count that cannot possibly fit the remaining bytes must be
        // rejected before allocation.
        let mut e = Enc::new(TAG_BATCH);
        e.u64(1);
        e.u32(u32::MAX); // claims 4 billion rows in an 13-byte frame
        assert_eq!(Response::decode(&e.buf), Err(ProtoError::Truncated));
    }

    #[test]
    fn unknown_tags_and_discriminants_are_typed() {
        assert_eq!(Request::decode(&[0x7F]), Err(ProtoError::UnknownTag(0x7F)));
        assert_eq!(Response::decode(&[0x02]), Err(ProtoError::UnknownTag(0x02)));
        let mut e = Enc::new(TAG_ERROR);
        e.u64(0);
        e.u8(200); // bad error code
        e.str("x");
        assert_eq!(
            Response::decode(&e.buf),
            Err(ProtoError::BadDiscriminant {
                what: "error code",
                value: 200
            })
        );
    }
}
