//! "Magic number" fallbacks for predicates with no statistics (paper
//! §3.5).
//!
//! When neither a sample nor a histogram covers a predicate, classical
//! systems fall back to hard-wired constants (Selinger et al.'s "magic
//! numbers": 1/10 for equality, 1/3 for ranges).  The paper proposes a
//! refinement: a **magic distribution** — a Beta prior standing in for the
//! unknown selectivity — so that the fallback, too, responds to the
//! confidence threshold: a conservative optimizer assumes an unknown
//! predicate is *less* selective.

use rqo_math::BetaDistribution;

use crate::confidence::ConfidenceThreshold;
use crate::posterior::SelectivityPosterior;

/// Policy for predicates with no usable statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MagicPolicy {
    /// A fixed selectivity constant, regardless of threshold (the
    /// classical behaviour).
    Number(f64),
    /// A Beta-shaped "magic distribution": the reported selectivity is its
    /// quantile at the confidence threshold.
    Distribution {
        /// First shape parameter.
        alpha: f64,
        /// Second shape parameter.
        beta: f64,
    },
}

impl Default for MagicPolicy {
    /// A magic distribution with mean 1/10 (the classic equality magic
    /// number) and enough spread that the threshold visibly matters.
    fn default() -> Self {
        MagicPolicy::Distribution {
            alpha: 1.0,
            beta: 9.0,
        }
    }
}

impl MagicPolicy {
    /// The fallback selectivity at a confidence threshold.
    ///
    /// # Panics
    ///
    /// Panics when a `Number` policy holds a value outside `[0, 1]` or a
    /// `Distribution` policy holds invalid shapes.
    pub fn selectivity(&self, t: ConfidenceThreshold) -> f64 {
        match self {
            MagicPolicy::Number(s) => {
                assert!((0.0..=1.0).contains(s), "magic number {s} outside [0,1]");
                *s
            }
            MagicPolicy::Distribution { alpha, beta } => {
                BetaDistribution::new(*alpha, *beta).quantile(t.value())
            }
        }
    }

    /// The fallback as a posterior, for consumers that propagate
    /// distributions (`Number` becomes a sharply concentrated Beta around
    /// the constant).
    pub fn posterior(&self) -> SelectivityPosterior {
        let dist = match self {
            MagicPolicy::Number(s) => {
                let s = s.clamp(1e-6, 1.0 - 1e-6);
                // Concentration worth ~10^4 pseudo-observations.
                let w = 10_000.0;
                BetaDistribution::new(s * w, (1.0 - s) * w)
            }
            MagicPolicy::Distribution { alpha, beta } => BetaDistribution::new(*alpha, *beta),
        };
        SelectivityPosterior::from_distribution(dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> ConfidenceThreshold {
        ConfidenceThreshold::new(x)
    }

    #[test]
    fn number_ignores_threshold() {
        let m = MagicPolicy::Number(0.1);
        assert_eq!(m.selectivity(t(0.05)), 0.1);
        assert_eq!(m.selectivity(t(0.95)), 0.1);
    }

    #[test]
    fn distribution_responds_to_threshold() {
        let m = MagicPolicy::default();
        let lo = m.selectivity(t(0.2));
        let mid = m.selectivity(t(0.5));
        let hi = m.selectivity(t(0.95));
        assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
        // Beta(1, 9) quantile at q is 1 - (1-q)^(1/9).
        let expect = |q: f64| 1.0 - (1.0 - q).powf(1.0 / 9.0);
        assert!((mid - expect(0.5)).abs() < 1e-9);
        assert!((hi - expect(0.95)).abs() < 1e-9);
    }

    #[test]
    fn posterior_forms() {
        let p = MagicPolicy::Number(0.25).posterior();
        assert!((p.mean() - 0.25).abs() < 1e-6);
        assert!(p.std_dev() < 0.01, "should be concentrated");
        let d = MagicPolicy::default().posterior();
        assert!((d.mean() - 0.1).abs() < 1e-9);
        assert!(d.std_dev() > 0.05, "should stay spread out");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_number() {
        MagicPolicy::Number(1.5).selectivity(t(0.5));
    }
}
