//! Cardinality feedback from executed plans.
//!
//! `EXPLAIN ANALYZE` observes the *actual* selectivity of every annotated
//! operator — the ground truth the estimator was trying to predict.  The
//! [`FeedbackStore`] records those observations keyed by the canonical
//! `(tables, predicates)` form of the estimation request, so that the next
//! optimization of the same (or an overlapping) query replaces its
//! sampling-based estimate with the observed value.  This is the classic
//! execution-feedback loop (LEO-style) layered on top of the paper's
//! robust estimator: the posterior quantifies uncertainty *before* the
//! first run, and feedback collapses it to the truth *after*.
//!
//! The key format is deliberately identical to the canonical form used by
//! the optimizer's per-query memo: tables sorted, predicates rendered as
//! sorted `"table:expr"` strings.  An observation recorded for a plan
//! node therefore hits exactly when the optimizer asks the estimator the
//! same question again, regardless of enumeration order.
//!
//! # Statistics epochs
//!
//! Observations are only valid against the data shape they were measured
//! on.  The store therefore carries a monotonically increasing
//! **statistics epoch**: [`FeedbackStore::advance_epoch`] (called by the
//! `UPDATE STATISTICS` analogue, `RobustDb::refresh_statistics`) drops
//! every recorded observation and bumps the counter, so downstream
//! consumers — the estimator, and any plan cache whose fingerprints embed
//! the epoch — atomically stop seeing stale selectivities.  Without this,
//! feedback observed against the *old* data keeps overriding fresh
//! samples forever (the stale-feedback bug fixed in PR 3).
//!
//! The global epoch is the right hammer for a full statistics rebuild,
//! but a *partial* refresh (one table, or a few partitions of one table)
//! must not throw away every other table's hard-won observations.  Each
//! observation therefore remembers which tables it references, and
//! [`FeedbackStore::advance_table_epoch`] evicts only the observations
//! touching the refreshed table while bumping that table's own counter.
//! Consumers that embed an epoch in a fingerprint use
//! [`FeedbackStore::epoch_for_tables`] — `global + Σ per-table` over the
//! query's tables — which strictly increases whenever *any* statistics
//! the query depends on are replaced, and stays put otherwise.
//!
//! # Lock poisoning
//!
//! The store is shared between recorder threads (executing facades) and
//! reader threads (concurrent optimizers).  A recorder that panics for an
//! unrelated reason must not cascade panics into every optimizer, so all
//! lock acquisitions recover from poisoning via
//! [`PoisonError::into_inner`]: the map's invariant (canonical key →
//! clamped selectivity) holds after every individual insert, making the
//! data safe to read even when a holder died mid-flight.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use rqo_expr::Expr;

/// Thread-safe map from canonical estimation-request keys to observed
/// selectivities in `[0, 1]`, tagged with a statistics epoch.
///
/// Interior mutability (a [`Mutex`]) lets a single store be shared via
/// `Arc` between the executing facade (which records) and estimators
/// (which look up) without threading `&mut` through the optimizer.
#[derive(Debug, Default)]
pub struct FeedbackStore {
    inner: Mutex<Inner>,
    epoch: AtomicU64,
}

/// One recorded observation: the measured selectivity plus the tables the
/// request referenced (sorted), so a per-table refresh can evict exactly
/// the observations that depended on the refreshed table.
#[derive(Debug, Clone)]
struct Observation {
    selectivity: f64,
    tables: Vec<String>,
}

/// Map state behind one lock: the observations and the per-table epoch
/// counters.  A single mutex (rather than two) makes
/// [`FeedbackStore::advance_table_epoch`] atomic — no recorder can slip a
/// stale observation in between the eviction and the epoch bump.
#[derive(Debug, Default, Clone)]
struct Inner {
    observations: HashMap<String, Observation>,
    table_epochs: HashMap<String, u64>,
}

impl FeedbackStore {
    /// Creates an empty store at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the inner state, recovering from poisoning: every
    /// individual insert leaves the map consistent, so observations
    /// written before a holder panicked are still valid.
    fn guard(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Canonical key for an estimation request: tables sorted, predicates
    /// rendered as sorted `"table:expr"` strings.  Matches the optimizer's
    /// selectivity-memo key so observations align with planner questions.
    pub fn canonical_key(tables: &[&str], predicates: &[(&str, &Expr)]) -> String {
        let mut key_tables: Vec<&str> = tables.to_vec();
        key_tables.sort_unstable();
        let mut key_preds: Vec<String> =
            predicates.iter().map(|(t, e)| format!("{t}:{e}")).collect();
        key_preds.sort_unstable();
        format!("{key_tables:?}|{key_preds:?}")
    }

    /// The current statistics epoch.  Starts at 0; bumped by
    /// [`advance_epoch`](Self::advance_epoch).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Invalidates every observation and advances the statistics epoch,
    /// returning the new epoch.  Call whenever the statistics the
    /// observations were measured against are replaced (sample redraw,
    /// bulk data change): selectivities observed against the old data
    /// must not override estimates drawn from the new.
    pub fn advance_epoch(&self) -> u64 {
        let mut inner = self.guard();
        inner.observations.clear();
        // Bumped while the map lock is held so no recorder can slip a
        // pre-refresh observation into the post-refresh epoch.
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Invalidates **only** the observations referencing `table` and bumps
    /// that table's own epoch counter, returning the new counter value.
    /// Observations over other tables — and the global epoch — are
    /// untouched, so a partial statistics refresh keeps the rest of the
    /// feedback loop warm.
    pub fn advance_table_epoch(&self, table: &str) -> u64 {
        let mut inner = self.guard();
        inner
            .observations
            .retain(|_, o| !o.tables.iter().any(|t| t == table));
        let e = inner.table_epochs.entry(table.to_string()).or_insert(0);
        *e += 1;
        *e
    }

    /// The epoch a consumer should embed for a request over `tables`:
    /// the global epoch plus the per-table epochs of every listed table.
    /// Strictly increases when any of those tables' statistics are
    /// refreshed (partially or fully) and is stable otherwise.  Distinct
    /// table sets may alias to the same number — harmless for fingerprint
    /// use, where the canonical query text already distinguishes them.
    pub fn epoch_for_tables<'a>(&self, tables: impl IntoIterator<Item = &'a str>) -> u64 {
        let inner = self.guard();
        self.epoch()
            + tables
                .into_iter()
                .map(|t| inner.table_epochs.get(t).copied().unwrap_or(0))
                .sum::<u64>()
    }

    /// A private copy of this store: same epoch, same observations,
    /// fully independent afterwards.  The adaptive executor re-plans
    /// against a fork so that a query cancelled mid-flight leaves the
    /// shared store untouched — its tentative observations are published
    /// (replayed onto the shared store) only if the query completes.
    pub fn fork(&self) -> Self {
        let inner = self.guard().clone();
        Self {
            inner: Mutex::new(inner),
            epoch: AtomicU64::new(self.epoch()),
        }
    }

    /// Every recorded observation as sorted `(key, selectivity)` pairs —
    /// a deterministic, comparable snapshot (the cancellation proptests
    /// assert a cancelled query leaves this byte-identical).
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = self
            .guard()
            .observations
            .iter()
            .map(|(k, o)| (k.clone(), o.selectivity))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Records an observed selectivity (clamped to `[0, 1]`), overwriting
    /// any previous observation for the same request.  Returns the
    /// previous observation, if any — the drift hook callers use to
    /// detect when reality moved away from what a cached plan was priced
    /// at.
    pub fn record(
        &self,
        tables: &[&str],
        predicates: &[(&str, &Expr)],
        selectivity: f64,
    ) -> Option<f64> {
        let key = Self::canonical_key(tables, predicates);
        let mut obs_tables: Vec<String> = tables.iter().map(|t| t.to_string()).collect();
        obs_tables.sort_unstable();
        obs_tables.dedup();
        self.guard()
            .observations
            .insert(
                key,
                Observation {
                    selectivity: selectivity.clamp(0.0, 1.0),
                    tables: obs_tables,
                },
            )
            .map(|o| o.selectivity)
    }

    /// Seeds an observation that was **not** measured by this system —
    /// a test fixture, a simulation of stale statistics, or an import
    /// from an external monitor.  Behaviourally identical to
    /// [`record`](Self::record) (clamped, overwriting); the separate
    /// name exists so production call sites greppably contain only
    /// `record` and injected values are easy to audit.  Tests use it to
    /// plant a wildly wrong selectivity and prove the adaptive guards
    /// catch it.
    pub fn inject_observation(
        &self,
        tables: &[&str],
        predicates: &[(&str, &Expr)],
        selectivity: f64,
    ) -> Option<f64> {
        self.record(tables, predicates, selectivity)
    }

    /// Returns the observed selectivity for this request, if any.
    pub fn lookup(&self, tables: &[&str], predicates: &[(&str, &Expr)]) -> Option<f64> {
        let key = Self::canonical_key(tables, predicates);
        self.guard().observations.get(&key).map(|o| o.selectivity)
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.guard().observations.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded observations without advancing the epoch.
    pub fn clear(&self) {
        self.guard().observations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pred(column: &str, value: i64) -> Expr {
        Expr::col(column).lt(Expr::lit(value))
    }

    #[test]
    fn key_is_invariant_to_request_order() {
        let a = pred("a", 10);
        let b = pred("b", 20);
        let fwd = FeedbackStore::canonical_key(&["t", "u"], &[("t", &a), ("u", &b)]);
        let rev = FeedbackStore::canonical_key(&["u", "t"], &[("u", &b), ("t", &a)]);
        assert_eq!(fwd, rev);

        let other = FeedbackStore::canonical_key(&["t", "u"], &[("t", &b), ("u", &a)]);
        assert_ne!(
            fwd, other,
            "swapping which table a predicate applies to changes the key"
        );
    }

    #[test]
    fn record_then_lookup_round_trips() {
        let store = FeedbackStore::new();
        let p = pred("k", 5);
        assert!(store.is_empty());
        assert_eq!(store.lookup(&["t"], &[("t", &p)]), None);

        assert_eq!(store.record(&["t"], &[("t", &p)], 0.25), None);
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup(&["t"], &[("t", &p)]), Some(0.25));

        // Re-recording overwrites (returning the displaced observation);
        // out-of-range observations are clamped.
        assert_eq!(store.record(&["t"], &[("t", &p)], 1.5), Some(0.25));
        assert_eq!(store.lookup(&["t"], &[("t", &p)]), Some(1.0));
        assert_eq!(store.len(), 1);

        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn distinct_predicates_get_distinct_entries() {
        let store = FeedbackStore::new();
        let p5 = pred("k", 5);
        let p9 = pred("k", 9);
        store.record(&["t"], &[("t", &p5)], 0.1);
        store.record(&["t"], &[("t", &p9)], 0.9);
        assert_eq!(store.lookup(&["t"], &[("t", &p5)]), Some(0.1));
        assert_eq!(store.lookup(&["t"], &[("t", &p9)]), Some(0.9));
    }

    #[test]
    fn advance_epoch_clears_and_bumps() {
        let store = FeedbackStore::new();
        let p = pred("k", 5);
        assert_eq!(store.epoch(), 0);
        store.record(&["t"], &[("t", &p)], 0.25);
        assert_eq!(store.advance_epoch(), 1);
        assert_eq!(store.epoch(), 1);
        assert!(
            store.is_empty(),
            "epoch advance must drop stale observations"
        );
        assert_eq!(store.advance_epoch(), 2);
    }

    #[test]
    fn table_epoch_evicts_only_referencing_observations() {
        let store = FeedbackStore::new();
        let p = pred("k", 5);
        store.record(&["t"], &[("t", &p)], 0.1);
        store.record(&["u"], &[("u", &p)], 0.2);
        store.record(&["t", "u"], &[("t", &p)], 0.3);
        store.record(&["v"], &[("v", &p)], 0.4);

        assert_eq!(store.advance_table_epoch("t"), 1);
        // Both the t-only and the joint t,u observations are gone...
        assert_eq!(store.lookup(&["t"], &[("t", &p)]), None);
        assert_eq!(store.lookup(&["t", "u"], &[("t", &p)]), None);
        // ...while u's and v's survive, and the global epoch is untouched.
        assert_eq!(store.lookup(&["u"], &[("u", &p)]), Some(0.2));
        assert_eq!(store.lookup(&["v"], &[("v", &p)]), Some(0.4));
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.advance_table_epoch("t"), 2);
    }

    #[test]
    fn epoch_for_tables_moves_with_any_referenced_table() {
        let store = FeedbackStore::new();
        assert_eq!(store.epoch_for_tables(["t", "u"]), 0);
        store.advance_table_epoch("t");
        assert_eq!(store.epoch_for_tables(["t", "u"]), 1);
        assert_eq!(store.epoch_for_tables(["t"]), 1);
        // A query not touching t sees no movement.
        assert_eq!(store.epoch_for_tables(["u"]), 0);
        assert_eq!(store.epoch_for_tables(["v", "u"]), 0);
        // Refreshing u moves the joint epoch again; a global advance moves
        // everything.
        store.advance_table_epoch("u");
        assert_eq!(store.epoch_for_tables(["t", "u"]), 2);
        store.advance_epoch();
        assert_eq!(store.epoch_for_tables(["t", "u"]), 3);
        assert_eq!(store.epoch_for_tables(["v"]), 1);
    }

    #[test]
    fn fork_carries_table_epochs() {
        let store = FeedbackStore::new();
        store.advance_table_epoch("t");
        let fork = store.fork();
        assert_eq!(fork.epoch_for_tables(["t"]), 1);
        // Diverges after the fork.
        fork.advance_table_epoch("t");
        assert_eq!(fork.epoch_for_tables(["t"]), 2);
        assert_eq!(store.epoch_for_tables(["t"]), 1);
    }

    #[test]
    fn fork_is_independent_and_snapshot_is_sorted() {
        let store = FeedbackStore::new();
        let p5 = pred("k", 5);
        let p9 = pred("k", 9);
        store.record(&["t"], &[("t", &p9)], 0.9);
        store.record(&["t"], &[("t", &p5)], 0.1);

        let fork = store.fork();
        assert_eq!(fork.epoch(), store.epoch());
        assert_eq!(fork.snapshot(), store.snapshot());

        // Writes to the fork never reach the parent (and vice versa).
        fork.record(&["t"], &[("t", &p5)], 0.7);
        assert_eq!(store.lookup(&["t"], &[("t", &p5)]), Some(0.1));
        store.record(&["u"], &[("u", &p9)], 0.2);
        assert_eq!(fork.lookup(&["u"], &[("u", &p9)]), None);

        let snap = store.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn poisoned_store_still_serves_lookups() {
        let store = Arc::new(FeedbackStore::new());
        let p = pred("k", 5);
        store.record(&["t"], &[("t", &p)], 0.25);

        // Poison the mutex: panic on a thread that holds the lock.
        let poisoner = Arc::clone(&store);
        let handle = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("recorder died while holding the feedback lock");
        });
        assert!(handle.join().is_err(), "poisoner thread must panic");
        assert!(store.inner.lock().is_err(), "mutex is poisoned");

        // Every access path recovers instead of cascading the panic.
        assert_eq!(store.lookup(&["t"], &[("t", &p)]), Some(0.25));
        assert_eq!(store.record(&["t"], &[("t", &p)], 0.5), Some(0.25));
        assert_eq!(store.len(), 1);
        assert_eq!(store.advance_epoch(), 1);
        assert!(store.is_empty());
    }
}
