//! Cardinality feedback from executed plans.
//!
//! `EXPLAIN ANALYZE` observes the *actual* selectivity of every annotated
//! operator — the ground truth the estimator was trying to predict.  The
//! [`FeedbackStore`] records those observations keyed by the canonical
//! `(tables, predicates)` form of the estimation request, so that the next
//! optimization of the same (or an overlapping) query replaces its
//! sampling-based estimate with the observed value.  This is the classic
//! execution-feedback loop (LEO-style) layered on top of the paper's
//! robust estimator: the posterior quantifies uncertainty *before* the
//! first run, and feedback collapses it to the truth *after*.
//!
//! The key format is deliberately identical to the canonical form used by
//! the optimizer's per-query memo: tables sorted, predicates rendered as
//! sorted `"table:expr"` strings.  An observation recorded for a plan
//! node therefore hits exactly when the optimizer asks the estimator the
//! same question again, regardless of enumeration order.

use std::collections::HashMap;
use std::sync::Mutex;

use rqo_expr::Expr;

/// Thread-safe map from canonical estimation-request keys to observed
/// selectivities in `[0, 1]`.
///
/// Interior mutability (a [`Mutex`]) lets a single store be shared via
/// `Arc` between the executing facade (which records) and estimators
/// (which look up) without threading `&mut` through the optimizer.
#[derive(Debug, Default)]
pub struct FeedbackStore {
    observations: Mutex<HashMap<String, f64>>,
}

impl FeedbackStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical key for an estimation request: tables sorted, predicates
    /// rendered as sorted `"table:expr"` strings.  Matches the optimizer's
    /// selectivity-memo key so observations align with planner questions.
    pub fn canonical_key(tables: &[&str], predicates: &[(&str, &Expr)]) -> String {
        let mut key_tables: Vec<&str> = tables.to_vec();
        key_tables.sort_unstable();
        let mut key_preds: Vec<String> =
            predicates.iter().map(|(t, e)| format!("{t}:{e}")).collect();
        key_preds.sort_unstable();
        format!("{key_tables:?}|{key_preds:?}")
    }

    /// Records an observed selectivity (clamped to `[0, 1]`), overwriting
    /// any previous observation for the same request.
    pub fn record(&self, tables: &[&str], predicates: &[(&str, &Expr)], selectivity: f64) {
        let key = Self::canonical_key(tables, predicates);
        self.observations
            .lock()
            .expect("feedback store lock poisoned")
            .insert(key, selectivity.clamp(0.0, 1.0));
    }

    /// Returns the observed selectivity for this request, if any.
    pub fn lookup(&self, tables: &[&str], predicates: &[(&str, &Expr)]) -> Option<f64> {
        let key = Self::canonical_key(tables, predicates);
        self.observations
            .lock()
            .expect("feedback store lock poisoned")
            .get(&key)
            .copied()
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.observations
            .lock()
            .expect("feedback store lock poisoned")
            .len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded observations.
    pub fn clear(&self) {
        self.observations
            .lock()
            .expect("feedback store lock poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(column: &str, value: i64) -> Expr {
        Expr::col(column).lt(Expr::lit(value))
    }

    #[test]
    fn key_is_invariant_to_request_order() {
        let a = pred("a", 10);
        let b = pred("b", 20);
        let fwd = FeedbackStore::canonical_key(&["t", "u"], &[("t", &a), ("u", &b)]);
        let rev = FeedbackStore::canonical_key(&["u", "t"], &[("u", &b), ("t", &a)]);
        assert_eq!(fwd, rev);

        let other = FeedbackStore::canonical_key(&["t", "u"], &[("t", &b), ("u", &a)]);
        assert_ne!(
            fwd, other,
            "swapping which table a predicate applies to changes the key"
        );
    }

    #[test]
    fn record_then_lookup_round_trips() {
        let store = FeedbackStore::new();
        let p = pred("k", 5);
        assert!(store.is_empty());
        assert_eq!(store.lookup(&["t"], &[("t", &p)]), None);

        store.record(&["t"], &[("t", &p)], 0.25);
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup(&["t"], &[("t", &p)]), Some(0.25));

        // Re-recording overwrites; out-of-range observations are clamped.
        store.record(&["t"], &[("t", &p)], 1.5);
        assert_eq!(store.lookup(&["t"], &[("t", &p)]), Some(1.0));
        assert_eq!(store.len(), 1);

        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn distinct_predicates_get_distinct_entries() {
        let store = FeedbackStore::new();
        let p5 = pred("k", 5);
        let p9 = pred("k", 9);
        store.record(&["t"], &[("t", &p5)], 0.1);
        store.record(&["t"], &[("t", &p9)], 0.9);
        assert_eq!(store.lookup(&["t"], &[("t", &p5)]), Some(0.1));
        assert_eq!(store.lookup(&["t"], &[("t", &p9)]), Some(0.9));
    }
}
