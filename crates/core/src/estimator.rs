//! Cardinality estimators: the robust sampling-based estimator (§3.4) and
//! the baselines it is evaluated against.
//!
//! All estimators answer the same question the optimizer asks during plan
//! search: *what fraction of the root relation's rows survive these
//! predicates in this FK-join expression?*  (FK joins are lossless, so the
//! expression's cardinality is that fraction times the root relation's
//! size; see [`rqo_stats::synopsis`].)
//!
//! * [`RobustEstimator`] — the paper's procedure: route the expression to
//!   its join synopsis, count satisfying sample tuples, form the Beta
//!   posterior, and collapse it at the confidence threshold.  Implements
//!   the §3.5 fallbacks when synopses are missing.
//! * [`HistogramEstimator`] — the commercial baseline: per-column
//!   equi-depth histograms combined under attribute-value independence,
//!   with Selinger-style magic constants for unsupported predicate shapes.
//! * [`OracleEstimator`] — exact selectivities by brute-force evaluation;
//!   used in tests and ablations as ground truth.

use std::collections::HashMap;
use std::sync::Arc;

use rqo_expr::Expr;
use rqo_stats::histogram::DEFAULT_BUCKETS;
use rqo_stats::synopsis::find_root;
use rqo_stats::{EquiDepthHistogram, SynopsisRepository};
use rqo_storage::{Catalog, DataType};

use crate::config::{EstimationStrategy, EstimatorConfig};
use crate::posterior::SelectivityPosterior;

/// An estimation request: an SPJ expression described as the set of tables
/// it joins (along FK edges) plus the local predicate on each table.
#[derive(Debug, Clone)]
pub struct EstimationRequest<'a> {
    /// Tables in the expression (order irrelevant).
    pub tables: Vec<&'a str>,
    /// Per-table local predicates; tables without predicates may be
    /// omitted.
    pub predicates: Vec<(&'a str, &'a Expr)>,
}

impl<'a> EstimationRequest<'a> {
    /// A request over several tables.
    pub fn new(tables: Vec<&'a str>, predicates: Vec<(&'a str, &'a Expr)>) -> Self {
        Self { tables, predicates }
    }

    /// A single-table request.
    pub fn single(table: &'a str, predicate: &'a Expr) -> Self {
        Self {
            tables: vec![table],
            predicates: vec![(table, predicate)],
        }
    }
}

/// Where an estimate came from — reported so experiments can attribute
/// behaviour and so fallbacks are observable rather than silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateSource {
    /// Evaluated on the join synopsis rooted at `root` with `k` of `n`
    /// sample tuples satisfying the predicates.
    JoinSynopsis {
        /// Root relation of the synopsis used.
        root: String,
        /// Satisfying sample tuples.
        k: usize,
        /// Sample size.
        n: usize,
    },
    /// No covering synopsis: per-table samples combined under the AVI
    /// assumption (§3.5 fallback 1).
    IndependentSamples,
    /// Per-column histograms under the AVI assumption.
    Histogram,
    /// No statistics at all: magic number/distribution (§3.5 fallback 2).
    Magic,
    /// Brute-force exact evaluation.
    Exact,
    /// Observed selectivity recorded by a previous execution's
    /// `EXPLAIN ANALYZE` in a [`FeedbackStore`].
    Feedback,
}

/// The result of cardinality estimation.
#[derive(Debug, Clone)]
pub struct SelectivityEstimate {
    /// The single-value selectivity handed to the cost model.
    pub selectivity: f64,
    /// The full posterior when the estimator produced one (the robust
    /// path always does; histogram baselines do not).
    pub posterior: Option<SelectivityPosterior>,
    /// Provenance.
    pub source: EstimateSource,
}

/// A cardinality estimation module, pluggable into the optimizer — the
/// paper's claim is precisely that swapping this module is the *only*
/// change a conventional optimizer needs.
pub trait CardinalityEstimator: Send + Sync {
    /// Human-readable name for experiment reports.
    fn name(&self) -> &str;

    /// Estimates the selectivity of an FK-join expression's predicates
    /// relative to its root relation.
    fn estimate(&self, request: &EstimationRequest<'_>) -> SelectivityEstimate;

    /// A variant of this estimator honouring a per-query confidence-
    /// threshold hint (paper §6.2.5), or `None` when the estimator has no
    /// threshold to move (histograms, oracles).
    fn hinted(
        &self,
        _threshold: crate::confidence::ConfidenceThreshold,
    ) -> Option<Box<dyn CardinalityEstimator>> {
        None
    }
}

// ---------------------------------------------------------------------
// Robust sampling-based estimator
// ---------------------------------------------------------------------

/// The paper's robust estimator over precomputed join synopses.
#[derive(Debug, Clone)]
pub struct RobustEstimator {
    repo: Arc<SynopsisRepository>,
    config: EstimatorConfig,
    feedback: Option<Arc<crate::feedback::FeedbackStore>>,
}

impl RobustEstimator {
    /// Creates the estimator from a synopsis repository and configuration.
    pub fn new(repo: Arc<SynopsisRepository>, config: EstimatorConfig) -> Self {
        Self {
            repo,
            config,
            feedback: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// This estimator with a different configuration (e.g. a per-query
    /// threshold hint) sharing the same synopses and feedback store.
    pub fn with_config(&self, config: EstimatorConfig) -> Self {
        Self {
            repo: Arc::clone(&self.repo),
            config,
            feedback: self.feedback.clone(),
        }
    }

    /// Attaches an execution-feedback store.  Recorded observations take
    /// precedence over synopsis evaluation: once `EXPLAIN ANALYZE` has
    /// seen a predicate's true selectivity there is no residual
    /// uncertainty for the posterior machinery to model.
    pub fn with_feedback(mut self, store: Arc<crate::feedback::FeedbackStore>) -> Self {
        self.feedback = Some(store);
        self
    }

    /// Collapses a posterior according to the configured strategy.
    fn collapse(&self, posterior: &SelectivityPosterior) -> f64 {
        match self.config.strategy {
            EstimationStrategy::Percentile(t) => posterior.at_threshold(t),
            EstimationStrategy::PosteriorMean => posterior.mean(),
            EstimationStrategy::MaximumLikelihood => posterior.mle(),
        }
    }

    /// §3.5 fallback: combine per-table estimates under AVI when no single
    /// synopsis covers the expression.
    fn estimate_independent(&self, request: &EstimationRequest<'_>) -> SelectivityEstimate {
        let mut selectivity = 1.0;
        let mut any_magic = false;
        for (table, expr) in &request.predicates {
            match self.repo.for_root(table) {
                Some(syn) if syn.sample_size() > 0 => {
                    let (k, n) = syn.evaluate(&[(table, expr)]);
                    let posterior = SelectivityPosterior::from_observation(k, n, self.config.prior);
                    selectivity *= self.collapse(&posterior);
                }
                _ => {
                    any_magic = true;
                    selectivity *= self.config.magic.selectivity(self.config.threshold());
                }
            }
        }
        SelectivityEstimate {
            selectivity,
            posterior: None,
            source: if any_magic && request.predicates.len() == 1 {
                EstimateSource::Magic
            } else {
                EstimateSource::IndependentSamples
            },
        }
    }
}

impl CardinalityEstimator for RobustEstimator {
    fn name(&self) -> &str {
        "robust-sampling"
    }

    fn hinted(
        &self,
        threshold: crate::confidence::ConfidenceThreshold,
    ) -> Option<Box<dyn CardinalityEstimator>> {
        Some(Box::new(self.with_config(self.config.hinted(threshold))))
    }

    fn estimate(&self, request: &EstimationRequest<'_>) -> SelectivityEstimate {
        if let Some(store) = &self.feedback {
            if let Some(selectivity) = store.lookup(&request.tables, &request.predicates) {
                return SelectivityEstimate {
                    selectivity,
                    posterior: None,
                    source: EstimateSource::Feedback,
                };
            }
        }
        match self.repo.for_expression(request.tables.iter().copied()) {
            Some(syn) if syn.sample_size() > 0 => {
                let (k, n) = syn.evaluate(&request.predicates);
                let posterior = SelectivityPosterior::from_observation(k, n, self.config.prior);
                SelectivityEstimate {
                    selectivity: self.collapse(&posterior),
                    posterior: Some(posterior),
                    source: EstimateSource::JoinSynopsis {
                        root: syn.root().to_string(),
                        k,
                        n,
                    },
                }
            }
            Some(_) => {
                // Covered but empty sample (empty root table): no evidence.
                let posterior = self.config.magic.posterior();
                SelectivityEstimate {
                    selectivity: self.config.magic.selectivity(self.config.threshold()),
                    posterior: Some(posterior),
                    source: EstimateSource::Magic,
                }
            }
            None => self.estimate_independent(request),
        }
    }
}

// ---------------------------------------------------------------------
// Histogram + AVI baseline
// ---------------------------------------------------------------------

/// Selinger-style constants for predicate shapes a one-dimensional
/// histogram cannot evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagicConstants {
    /// `col = expr` with a non-literal right side.
    pub equality: f64,
    /// Range-shaped predicates on columns without histograms.
    pub range: f64,
    /// Everything else (LIKE, arithmetic, OR, ...).
    pub other: f64,
}

impl Default for MagicConstants {
    fn default() -> Self {
        // The classical System R values.
        Self {
            equality: 0.1,
            range: 1.0 / 3.0,
            other: 1.0 / 3.0,
        }
    }
}

/// The histogram-based baseline estimator: per-conjunct selectivities from
/// single-column equi-depth histograms, multiplied under the AVI
/// assumption.
#[derive(Debug, Clone)]
pub struct HistogramEstimator {
    histograms: HashMap<(String, String), Arc<EquiDepthHistogram>>,
    constants: MagicConstants,
}

impl HistogramEstimator {
    /// Builds histograms (with `buckets` buckets) over every numeric
    /// column of every table in the catalog — the baseline's
    /// `UPDATE STATISTICS`.
    pub fn build(catalog: &Catalog, buckets: usize) -> Self {
        let mut histograms = HashMap::new();
        for table in catalog.tables() {
            for col in table.schema().columns() {
                if matches!(
                    col.data_type,
                    DataType::Int | DataType::Float | DataType::Date
                ) {
                    let h = EquiDepthHistogram::build(table, &col.name, buckets);
                    histograms.insert((table.name().to_string(), col.name.clone()), Arc::new(h));
                }
            }
        }
        Self {
            histograms,
            constants: MagicConstants::default(),
        }
    }

    /// Builds with the paper's default 250-bucket resolution.
    pub fn build_default(catalog: &Catalog) -> Self {
        Self::build(catalog, DEFAULT_BUCKETS)
    }

    /// The histogram for one column, if built.
    pub fn histogram(&self, table: &str, column: &str) -> Option<&EquiDepthHistogram> {
        self.histograms
            .get(&(table.to_string(), column.to_string()))
            .map(|h| h.as_ref())
    }

    /// Total stored bytes across all histograms (for §6.1 space parity).
    pub fn stored_bytes(&self) -> usize {
        self.histograms.values().map(|h| h.stored_bytes()).sum()
    }

    /// Selectivity of one conjunct on one table.
    fn conjunct_selectivity(&self, table: &str, conjunct: &Expr) -> f64 {
        if let Some((column, lo, hi)) = conjunct.as_column_range() {
            if let Some(h) = self.histogram(table, column) {
                // Point ranges use the equality path (count/distinct);
                // proper ranges interpolate.
                if let (std::ops::Bound::Included(a), std::ops::Bound::Included(b)) = (&lo, &hi) {
                    if a == b {
                        return h.eq_selectivity(a);
                    }
                }
                return h.range_selectivity(lo.as_ref(), hi.as_ref());
            }
            return self.constants.range;
        }
        // Equality against a non-literal, LIKE, IN, OR, arithmetic...
        match conjunct {
            Expr::Binary {
                op: rqo_expr::BinaryOp::Eq,
                ..
            } => self.constants.equality,
            Expr::InList { list, .. } => (self.constants.equality * list.len() as f64).min(1.0),
            _ => self.constants.other,
        }
    }
}

impl CardinalityEstimator for HistogramEstimator {
    fn name(&self) -> &str {
        "histogram-avi"
    }

    fn estimate(&self, request: &EstimationRequest<'_>) -> SelectivityEstimate {
        // AVI across all conjuncts of all per-table predicates; FK joins
        // are lossless so they contribute factor 1.
        let mut selectivity = 1.0;
        for (table, expr) in &request.predicates {
            for conjunct in expr.conjuncts() {
                selectivity *= self.conjunct_selectivity(table, conjunct);
            }
        }
        SelectivityEstimate {
            selectivity,
            posterior: None,
            source: EstimateSource::Histogram,
        }
    }
}

// ---------------------------------------------------------------------
// Distributional histogram estimator (§3.2's orthogonality claim)
// ---------------------------------------------------------------------

/// The paper notes (§3.2, last paragraph) that its robust procedure "could
/// be applied to a probability distribution generated using any
/// cardinality estimation technique".  This estimator demonstrates that
/// orthogonality — and its limits: it wraps the histogram/AVI *point*
/// estimate in a Beta distribution whose weight reflects the histogram
/// resolution, then collapses it at the confidence threshold like the
/// sampling path does.
///
/// The instructive property (exercised in tests) is that thresholding
/// cannot rescue a *biased* center: on correlated predicates the AVI
/// point estimate is simply wrong, and no percentile of a distribution
/// centered on the wrong value tracks the truth.  Calibrated uncertainty
/// requires an unbiased evidence source — which is why the paper pairs
/// the percentile rule with sampling.
#[derive(Debug, Clone)]
pub struct DistributionalHistogramEstimator {
    inner: HistogramEstimator,
    config: EstimatorConfig,
    /// Pseudo-observation weight assigned to the histogram estimate.
    weight: f64,
}

impl DistributionalHistogramEstimator {
    /// Wraps a histogram estimator; `weight` is the pseudo-sample size
    /// expressing how much the histogram estimate is trusted (a
    /// 250-bucket histogram resolves ≈1/250 of the distribution, so a few
    /// hundred is a natural choice).
    ///
    /// # Panics
    ///
    /// Panics when `weight` is not positive.
    pub fn new(inner: HistogramEstimator, config: EstimatorConfig, weight: f64) -> Self {
        assert!(weight > 0.0, "weight must be positive");
        Self {
            inner,
            config,
            weight,
        }
    }

    fn collapse(&self, posterior: &SelectivityPosterior) -> f64 {
        match self.config.strategy {
            EstimationStrategy::Percentile(t) => posterior.at_threshold(t),
            EstimationStrategy::PosteriorMean | EstimationStrategy::MaximumLikelihood => {
                posterior.mean()
            }
        }
    }
}

impl CardinalityEstimator for DistributionalHistogramEstimator {
    fn name(&self) -> &str {
        "histogram-distributional"
    }

    fn estimate(&self, request: &EstimationRequest<'_>) -> SelectivityEstimate {
        let point = self.inner.estimate(request).selectivity;
        // Beta centered at the point estimate, clamped off the boundary so
        // the shape parameters stay valid.
        let center = point.clamp(1e-6, 1.0 - 1e-6);
        let dist =
            rqo_math::BetaDistribution::new(center * self.weight, (1.0 - center) * self.weight);
        let posterior = SelectivityPosterior::from_distribution(dist);
        SelectivityEstimate {
            selectivity: self.collapse(&posterior),
            posterior: Some(posterior),
            source: EstimateSource::Histogram,
        }
    }

    fn hinted(
        &self,
        threshold: crate::confidence::ConfidenceThreshold,
    ) -> Option<Box<dyn CardinalityEstimator>> {
        Some(Box::new(Self {
            inner: self.inner.clone(),
            config: self.config.hinted(threshold),
            weight: self.weight,
        }))
    }
}

// ---------------------------------------------------------------------
// Exact oracle (tests, ablations)
// ---------------------------------------------------------------------

/// Ground-truth estimator: brute-force evaluates the expression over the
/// base data by walking each root row's FK closure.  `O(|root|)` per call;
/// strictly for tests, ablations, and accuracy reports.
#[derive(Debug, Clone)]
pub struct OracleEstimator {
    catalog: Arc<Catalog>,
}

/// One node of the oracle's precompiled FK walk: a table's bound local
/// predicates plus the outgoing FK hops (key ordinal + target index +
/// target node).
struct OracleNode {
    table: Arc<rqo_storage::Table>,
    predicates: Vec<Expr>,
    hops: Vec<(usize, Arc<rqo_storage::UniqueIndex>, OracleNode)>,
}

impl OracleNode {
    fn satisfies(&self, rid: u32) -> bool {
        if !self.predicates.is_empty() {
            let row = self.table.row(rid);
            if !self.predicates.iter().all(|p| rqo_expr::eval_bool(p, &row)) {
                return false;
            }
        }
        self.hops.iter().all(|(key_col, index, target)| {
            let key = self.table.value(rid, *key_col).as_int();
            let target_rid = index.get(key).expect("dangling FK");
            target.satisfies(target_rid)
        })
    }
}

impl OracleEstimator {
    /// Creates the oracle over a catalog (FKs must be declared so the
    /// unique indexes exist).
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self { catalog }
    }

    /// Compiles the FK closure rooted at `table` into a walkable tree:
    /// predicate binding, column-ordinal resolution, and index lookup all
    /// happen once here instead of once per row.
    fn compile(&self, table: &str, predicates: &[(&str, &Expr)]) -> OracleNode {
        let t = Arc::clone(self.catalog.table(table).expect("table exists"));
        let bound: Vec<Expr> = predicates
            .iter()
            .filter(|(pt, _)| *pt == table)
            .map(|(_, e)| e.bind(t.schema()).expect("predicate binds"))
            .collect();
        let hops = self
            .catalog
            .foreign_keys_from(table)
            .cloned()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|fk| {
                let key_col = t.schema().expect_index(&fk.from_column);
                let index = Arc::clone(
                    self.catalog
                        .unique_index(&fk.to_table, &fk.to_column)
                        .expect("unique index built with FK"),
                );
                (key_col, index, self.compile(&fk.to_table, predicates))
            })
            .collect();
        OracleNode {
            table: t,
            predicates: bound,
            hops,
        }
    }
}

impl CardinalityEstimator for OracleEstimator {
    fn name(&self) -> &str {
        "oracle-exact"
    }

    fn estimate(&self, request: &EstimationRequest<'_>) -> SelectivityEstimate {
        let root = find_root(&self.catalog, &request.tables)
            .expect("expression tables must share an FK root");
        let walk = self.compile(root, &request.predicates);
        let total = walk.table.num_rows();
        if total == 0 {
            return SelectivityEstimate {
                selectivity: 0.0,
                posterior: None,
                source: EstimateSource::Exact,
            };
        }
        let hits = (0..total as u32).filter(|&rid| walk.satisfies(rid)).count();
        SelectivityEstimate {
            selectivity: hits as f64 / total as f64,
            posterior: None,
            source: EstimateSource::Exact,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::ConfidenceThreshold;
    use rqo_datagen::{workload, TpchConfig, TpchData};
    use rqo_storage::Value;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            TpchData::generate(&TpchConfig {
                scale_factor: 0.01,
                seed: 77,
            })
            .into_catalog(),
        )
    }

    fn robust(cat: &Catalog, t: f64, n: usize, seed: u64) -> RobustEstimator {
        let repo = Arc::new(SynopsisRepository::build_all(cat, n, seed));
        RobustEstimator::new(
            repo,
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(t)),
        )
    }

    #[test]
    fn robust_single_table_estimate() {
        let cat = catalog();
        let est = robust(&cat, 0.5, 500, 1);
        let pred = Expr::col("p_x").lt(Expr::lit(100i64));
        let r = est.estimate(&EstimationRequest::single("part", &pred));
        assert!(
            matches!(r.source, EstimateSource::JoinSynopsis { ref root, n: 500, .. } if root == "part")
        );
        assert!((r.selectivity - 0.1).abs() < 0.05, "sel {}", r.selectivity);
        assert!(r.posterior.is_some());
    }

    #[test]
    fn feedback_takes_precedence_over_synopsis() {
        let cat = catalog();
        let pred = Expr::col("p_x").lt(Expr::lit(100i64));
        let req = EstimationRequest::single("part", &pred);

        let store = Arc::new(crate::feedback::FeedbackStore::new());
        let est = robust(&cat, 0.5, 500, 1).with_feedback(Arc::clone(&store));

        // Empty store: behaves exactly like the plain robust estimator.
        let before = est.estimate(&req);
        assert!(matches!(before.source, EstimateSource::JoinSynopsis { .. }));

        store.record(&["part"], &[("part", &pred)], 0.123);
        let after = est.estimate(&req);
        assert_eq!(after.source, EstimateSource::Feedback);
        assert_eq!(after.selectivity, 0.123);
        assert!(after.posterior.is_none());

        // The hinted (per-query threshold) variant keeps the store.
        let hinted = est.hinted(ConfidenceThreshold::new(0.95)).unwrap();
        assert_eq!(hinted.estimate(&req).source, EstimateSource::Feedback);
    }

    #[test]
    fn robust_threshold_ordering() {
        let cat = catalog();
        let pred = workload::exp1_lineitem_predicate(90);
        let req = EstimationRequest::single("lineitem", &pred);
        let mut prev = 0.0;
        for t in [0.05, 0.5, 0.95] {
            let est = robust(&cat, t, 500, 3);
            let s = est.estimate(&req).selectivity;
            assert!(s >= prev, "threshold {t}: {s} < {prev}");
            prev = s;
        }
    }

    #[test]
    fn robust_join_expression_uses_root_synopsis() {
        let cat = catalog();
        let est = robust(&cat, 0.8, 400, 5);
        let pred = workload::exp2_part_predicate(120);
        let req = EstimationRequest::new(vec!["lineitem", "orders", "part"], vec![("part", &pred)]);
        let r = est.estimate(&req);
        match &r.source {
            EstimateSource::JoinSynopsis { root, n, .. } => {
                assert_eq!(root, "lineitem");
                assert_eq!(*n, 400);
            }
            other => panic!("unexpected source {other:?}"),
        }
    }

    #[test]
    fn robust_avi_fallback_without_covering_synopsis() {
        // orders + part share no FK root, so no synopsis covers them; the
        // estimator must fall back to independent samples with AVI.
        let cat = catalog();
        let est = robust(&cat, 0.5, 300, 7);
        let p1 = Expr::col("o_totalprice").gt(Expr::lit(0.0));
        let p2 = Expr::col("p_x").lt(Expr::lit(100i64));
        let req =
            EstimationRequest::new(vec!["orders", "part"], vec![("orders", &p1), ("part", &p2)]);
        let r = est.estimate(&req);
        assert_eq!(r.source, EstimateSource::IndependentSamples);
        // ~1.0 * ~0.1 under AVI.
        assert!((r.selectivity - 0.1).abs() < 0.06, "sel {}", r.selectivity);
    }

    #[test]
    fn strategy_ablation_mean_vs_mle_vs_percentile() {
        let cat = catalog();
        let repo = Arc::new(SynopsisRepository::build_all(&cat, 500, 11));
        let pred = workload::exp1_lineitem_predicate(100); // rare predicate
        let req = EstimationRequest::single("lineitem", &pred);

        let mk = |strategy| {
            RobustEstimator::new(
                Arc::clone(&repo),
                EstimatorConfig {
                    strategy,
                    ..EstimatorConfig::default()
                },
            )
        };
        let mle = mk(EstimationStrategy::MaximumLikelihood).estimate(&req);
        let mean = mk(EstimationStrategy::PosteriorMean).estimate(&req);
        let p95 = mk(EstimationStrategy::Percentile(ConfidenceThreshold::new(
            0.95,
        )))
        .estimate(&req);
        // For a rare predicate (small k), mean > mle (the prior pulls up)
        // and the 95th percentile dominates both.
        assert!(mean.selectivity >= mle.selectivity);
        assert!(p95.selectivity > mean.selectivity);
    }

    #[test]
    fn histogram_estimator_matches_marginals_but_misses_correlation() {
        let cat = catalog();
        let hist = HistogramEstimator::build_default(&cat);
        assert_eq!(hist.name(), "histogram-avi");
        assert!(hist.stored_bytes() > 0);

        // Marginal: p_x < 100 is 10%; histograms get this right.
        let marginal = Expr::col("p_x").lt(Expr::lit(100i64));
        let r = hist.estimate(&EstimationRequest::single("part", &marginal));
        assert!((r.selectivity - 0.1).abs() < 0.02, "sel {}", r.selectivity);

        // Joint: AVI says sel(p_x)·sel(p_y) ≈ 0.09% regardless of the
        // window position, although the truth varies from ~0.45% to 0.
        let part = cat.table("part").unwrap();
        for window in [100i64, 240] {
            let joint = workload::exp2_part_predicate(window);
            let r = hist.estimate(&EstimationRequest::single("part", &joint));
            assert!(
                (r.selectivity - 0.0009).abs() < 0.0006,
                "window {window}: AVI sel {}",
                r.selectivity
            );
            let truth = workload::true_selectivity(part, &joint);
            if window == 100 {
                assert!(truth > 0.003, "truth {truth}");
            } else {
                assert_eq!(truth, 0.0);
            }
        }
    }

    #[test]
    fn distributional_histogram_responds_to_threshold_but_stays_biased() {
        let cat = catalog();
        let base = HistogramEstimator::build_default(&cat);
        let mk = |t: f64| {
            DistributionalHistogramEstimator::new(
                base.clone(),
                EstimatorConfig::with_threshold(ConfidenceThreshold::new(t)),
                250.0,
            )
        };
        // The threshold moves the estimate (unlike the plain histogram).
        let pred = workload::exp2_part_predicate(100);
        let req = EstimationRequest::single("part", &pred);
        let lo = mk(0.05).estimate(&req);
        let hi = mk(0.95).estimate(&req);
        assert!(lo.selectivity < hi.selectivity);
        assert!(lo.posterior.is_some());

        // ...but the center is the AVI point estimate, which is *blind to
        // the correlation*: the estimate (at any threshold) is identical
        // for the fully-overlapping window and the empty window, although
        // the truths differ by everything.  Thresholding cannot repair a
        // biased evidence source.
        let part = cat.table("part").unwrap();
        let empty_pred = workload::exp2_part_predicate(240);
        let empty_req = EstimationRequest::single("part", &empty_pred);
        let hi_empty = mk(0.95).estimate(&empty_req);
        // Same ballpark regardless of the window (up to histogram
        // boundary-interpolation wiggle), although the truths differ by
        // everything.
        let ratio = hi.selectivity / hi_empty.selectivity;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "AVI center should be window-invariant: {} vs {}",
            hi.selectivity,
            hi_empty.selectivity
        );
        let truth_full = workload::true_selectivity(part, &pred);
        let truth_empty = workload::true_selectivity(part, &empty_pred);
        assert!(truth_full > 0.002, "truth {truth_full}");
        assert_eq!(truth_empty, 0.0);

        // Hints work through the trait.
        let hinted = mk(0.05).hinted(ConfidenceThreshold::new(0.95)).unwrap();
        assert!((hinted.estimate(&req).selectivity - hi.selectivity).abs() < 1e-12);
        assert_eq!(mk(0.5).name(), "histogram-distributional");
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn distributional_histogram_rejects_bad_weight() {
        let cat = catalog();
        DistributionalHistogramEstimator::new(
            HistogramEstimator::build_default(&cat),
            EstimatorConfig::default(),
            0.0,
        );
    }

    #[test]
    fn histogram_magic_constants_for_unsupported_shapes() {
        let cat = catalog();
        let hist = HistogramEstimator::build_default(&cat);
        // LIKE on a string column: no histogram shape.
        let like = Expr::col("p_brand").like("Brand#1%");
        let r = hist.estimate(&EstimationRequest::single("part", &like));
        assert!((r.selectivity - 1.0 / 3.0).abs() < 1e-12);
        // IN list scales the equality magic.
        let inl =
            Expr::col("p_brand").in_list(vec![Value::str("Brand#11"), Value::str("Brand#12")]);
        let r = hist.estimate(&EstimationRequest::single("part", &inl));
        assert!((r.selectivity - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sampling_handles_arbitrary_predicate_shapes() {
        // Paper §3.2, point 3: sampling "is not restricted to equality and
        // range predicates, but works for almost any type of query
        // predicate, including arithmetic expressions, substring matches".
        // Histograms must fall back to magic constants for these shapes.
        let cat = catalog();
        let est = robust(&cat, 0.5, 500, 19);
        let hist = HistogramEstimator::build_default(&cat);

        // Arithmetic: unit price above a cutoff (price/quantity is not a
        // column).
        let arith = Expr::col("l_extendedprice")
            .div(Expr::col("l_quantity"))
            .gt(Expr::lit(950.0));
        let truth = workload::true_selectivity(cat.table("lineitem").unwrap(), &arith);
        let req = EstimationRequest::single("lineitem", &arith);
        let robust_est = est.estimate(&req);
        assert!(
            (robust_est.selectivity - truth).abs() < 0.08,
            "robust {} vs truth {truth}",
            robust_est.selectivity
        );
        let hist_est = hist.estimate(&req);
        assert!(
            (hist_est.selectivity - 1.0 / 3.0).abs() < 1e-12,
            "magic fallback"
        );

        // Substring match through the FK join: brand prefix on part,
        // estimated from the lineitem synopsis.
        let like = Expr::col("p_brand").like("Brand#1%");
        let req = EstimationRequest::new(vec!["lineitem", "part"], vec![("part", &like)]);
        let r = est.estimate(&req);
        // 5 of 25 brands ⇒ ~20%.
        assert!((r.selectivity - 0.2).abs() < 0.08, "{}", r.selectivity);
    }

    #[test]
    fn empty_table_falls_back_to_magic() {
        use rqo_storage::{Schema, TableBuilder};
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs(&[("x", rqo_storage::DataType::Int)]);
        cat.add_table(TableBuilder::new("empty", schema, 0).finish())
            .unwrap();
        let cat = Arc::new(cat);
        let repo = Arc::new(SynopsisRepository::build_all(&cat, 100, 1));
        let est = RobustEstimator::new(repo, EstimatorConfig::default());
        let pred = Expr::col("x").eq(Expr::lit(1i64));
        let r = est.estimate(&EstimationRequest::single("empty", &pred));
        assert_eq!(r.source, EstimateSource::Magic);
        assert!((0.0..=1.0).contains(&r.selectivity));
        assert!(r.posterior.is_some());
    }

    #[test]
    fn oracle_is_exact() {
        let cat = catalog();
        let oracle = OracleEstimator::new(Arc::clone(&cat));
        let pred = Expr::col("p_x").lt(Expr::lit(100i64));
        let direct = workload::true_selectivity(cat.table("part").unwrap(), &pred);
        let r = oracle.estimate(&EstimationRequest::single("part", &pred));
        assert_eq!(r.source, EstimateSource::Exact);
        assert!((r.selectivity - direct).abs() < 1e-12);
    }

    #[test]
    fn oracle_join_expression() {
        let cat = catalog();
        let oracle = OracleEstimator::new(Arc::clone(&cat));
        let pred = Expr::col("p_x").lt(Expr::lit(100i64));
        let req = EstimationRequest::new(vec!["lineitem", "orders", "part"], vec![("part", &pred)]);
        let r = oracle.estimate(&req);
        // l_partkey is uniform over parts, so the joined fraction tracks
        // the part fraction (~10%).
        assert!((r.selectivity - 0.1).abs() < 0.02, "sel {}", r.selectivity);
    }

    #[test]
    fn robust_estimate_is_unbiased_under_mle() {
        let cat = catalog();
        let pred = workload::exp1_lineitem_predicate(60);
        let truth = workload::true_selectivity(cat.table("lineitem").unwrap(), &pred);
        let req = EstimationRequest::single("lineitem", &pred);
        let mut acc = 0.0;
        let reps = 20;
        for seed in 0..reps {
            let repo = Arc::new(SynopsisRepository::build_all(&cat, 500, seed));
            let est = RobustEstimator::new(
                repo,
                EstimatorConfig {
                    strategy: EstimationStrategy::MaximumLikelihood,
                    ..EstimatorConfig::default()
                },
            );
            acc += est.estimate(&req).selectivity;
        }
        let mean = acc / reps as f64;
        assert!(
            (mean - truth).abs() < 0.2 * truth.max(0.01),
            "mean {mean} vs truth {truth}"
        );
    }
}
