//! Configuration for mid-query adaptive re-optimization.
//!
//! The paper's confidence threshold picks a plan *once*; when the chosen
//! selectivity turns out badly wrong the plan runs to completion anyway.
//! Adaptive execution closes that gap: blocking operators (hash-join
//! builds, aggregate inputs, index intersections, nested-loop outers)
//! carry **runtime cardinality guards** that compare the rows actually
//! materialized at the pipeline breaker against the estimate the plan was
//! priced at.  When the q-error between them exceeds the guard bound,
//! execution pauses, the observed selectivities are fed back, and the
//! remainder of the query is re-optimized at an *escalated* confidence
//! threshold — the first misestimate is evidence the statistics are less
//! trustworthy than the session assumed, so the re-plan hedges harder.
//!
//! [`AdaptivePolicy`] is the knob bundle: how wrong an estimate must be
//! before interrupting (`guard_bound`), how the threshold escalates per
//! re-plan (`escalation`), and how many times one query may re-plan
//! (`max_replans`).

use crate::confidence::ConfidenceThreshold;
use crate::penalty::PlanSelection;

/// Default guard bound: interrupt when actual rows are 4× off the
/// estimate in either direction.  Deliberately looser than the plan
/// cache's default 2× drift bound — a mid-query re-plan costs more than
/// a cache eviction, so it takes stronger evidence.
pub const DEFAULT_GUARD_BOUND: f64 = 4.0;

/// Controls when and how a running query re-optimizes itself.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePolicy {
    /// Maximum tolerated q-error (`max(est, actual) / min(est, actual)`,
    /// both floored at one row) between a blocking operator's estimated
    /// and actual output cardinality before execution pauses for a
    /// re-plan.  Must be ≥ 1.
    pub guard_bound: f64,
    /// Confidence-threshold escalation schedule: the `k`-th re-plan (0-
    /// based) runs the optimizer at `max(current, escalation[k])`, with
    /// the last entry reused once the schedule is exhausted.  An empty
    /// schedule keeps the current threshold.
    pub escalation: Vec<ConfidenceThreshold>,
    /// Maximum number of re-plans per query; `0` disables guards
    /// entirely (execution is identical to the non-adaptive path).
    pub max_replans: usize,
    /// Whether a *second* guard trip escalates the re-plan from
    /// quantile mode to [`PlanSelection::ExpectedPenalty`].  One trip is
    /// a misestimate; two trips in the same query mean point-collapsing
    /// the posterior is itself failing, so the re-plan switches to
    /// integrating over it instead of just raising `T`.
    pub escalate_to_penalty: bool,
}

impl Default for AdaptivePolicy {
    /// Guards at 4× q-error, escalating to T = 80% then T = 95%, at most
    /// two re-plans per query.
    fn default() -> Self {
        Self {
            guard_bound: DEFAULT_GUARD_BOUND,
            escalation: vec![
                ConfidenceThreshold::from_percent(80.0),
                ConfidenceThreshold::from_percent(95.0),
            ],
            max_replans: 2,
            escalate_to_penalty: true,
        }
    }
}

impl AdaptivePolicy {
    /// The default enabled policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A policy that never interrupts: no guards are armed and execution
    /// is bit-identical to the static path, at the static plan's cost.
    pub fn disabled() -> Self {
        Self {
            max_replans: 0,
            ..Self::default()
        }
    }

    /// Replaces the guard bound.
    ///
    /// # Panics
    ///
    /// Panics when `bound < 1.0` (a q-error is never below one).
    pub fn with_guard_bound(mut self, bound: f64) -> Self {
        assert!(bound >= 1.0, "guard bound is a q-error, must be ≥ 1");
        self.guard_bound = bound;
        self
    }

    /// Replaces the escalation schedule.
    pub fn with_escalation(mut self, schedule: Vec<ConfidenceThreshold>) -> Self {
        self.escalation = schedule;
        self
    }

    /// Replaces the re-plan budget.
    pub fn with_max_replans(mut self, max_replans: usize) -> Self {
        self.max_replans = max_replans;
        self
    }

    /// Enables or disables the quantile→penalty mode escalation on the
    /// second guard trip.
    pub fn with_penalty_escalation(mut self, enabled: bool) -> Self {
        self.escalate_to_penalty = enabled;
        self
    }

    /// Whether guards are armed at all.
    pub fn is_enabled(&self) -> bool {
        self.max_replans > 0
    }

    /// The plan-selection mode for the `replans_done`-th re-plan: the
    /// second and later re-plans switch to expected-penalty selection
    /// when [`escalate_to_penalty`](Self::escalate_to_penalty) is set,
    /// and `current` is never *de*-escalated back to quantile mode.
    pub fn escalate_selection(&self, current: PlanSelection, replans_done: usize) -> PlanSelection {
        if current == PlanSelection::ExpectedPenalty {
            return current;
        }
        if self.escalate_to_penalty && replans_done >= 1 {
            PlanSelection::ExpectedPenalty
        } else {
            current
        }
    }

    /// The confidence threshold for the `replans_done`-th re-plan (0 for
    /// the first): the schedule entry, floored at the current threshold —
    /// escalation never *lowers* robustness.
    pub fn escalate(
        &self,
        current: ConfidenceThreshold,
        replans_done: usize,
    ) -> ConfidenceThreshold {
        let Some(target) = self
            .escalation
            .get(replans_done.min(self.escalation.len().saturating_sub(1)))
        else {
            return current;
        };
        if target.value() > current.value() {
            *target
        } else {
            current
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_enabled() {
        let p = AdaptivePolicy::default();
        assert!(p.is_enabled());
        assert_eq!(p.guard_bound, DEFAULT_GUARD_BOUND);
        assert_eq!(p.max_replans, 2);
    }

    #[test]
    fn disabled_policy_arms_nothing() {
        assert!(!AdaptivePolicy::disabled().is_enabled());
    }

    #[test]
    fn escalation_takes_max_of_current_and_schedule() {
        let p = AdaptivePolicy::default();
        // Below the schedule: escalate up.
        let t = p.escalate(ConfidenceThreshold::from_percent(50.0), 0);
        assert_eq!(t.percent(), 80.0);
        let t = p.escalate(t, 1);
        assert_eq!(t.percent(), 95.0);
        // Past the schedule end: the last entry is reused.
        let t = p.escalate(t, 5);
        assert_eq!(t.percent(), 95.0);
        // Already above the schedule: never lowered.
        let t = p.escalate(ConfidenceThreshold::from_percent(99.0), 0);
        assert_eq!(t.percent(), 99.0);
    }

    #[test]
    fn selection_escalates_on_the_second_trip_only() {
        let p = AdaptivePolicy::default();
        assert!(p.escalate_to_penalty);
        let first = p.escalate_selection(PlanSelection::Quantile, 0);
        assert_eq!(first, PlanSelection::Quantile);
        let second = p.escalate_selection(PlanSelection::Quantile, 1);
        assert_eq!(second, PlanSelection::ExpectedPenalty);
        // Never de-escalates.
        assert_eq!(
            p.escalate_selection(PlanSelection::ExpectedPenalty, 0),
            PlanSelection::ExpectedPenalty
        );
        // Opt-out keeps quantile mode throughout.
        let p = p.with_penalty_escalation(false);
        assert_eq!(
            p.escalate_selection(PlanSelection::Quantile, 3),
            PlanSelection::Quantile
        );
    }

    #[test]
    fn empty_schedule_keeps_current() {
        let p = AdaptivePolicy::default().with_escalation(vec![]);
        let t = p.escalate(ConfidenceThreshold::from_percent(50.0), 0);
        assert_eq!(t.percent(), 50.0);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn sub_unity_guard_bound_rejected() {
        AdaptivePolicy::default().with_guard_bound(0.5);
    }
}
