//! Robust cardinality estimation — the primary contribution of Babcock &
//! Chaudhuri, *"Towards a Robust Query Optimizer: A Principled and
//! Practical Approach"* (SIGMOD 2005).
//!
//! Instead of a single-point selectivity guess, the estimator derives a
//! full *probability distribution* over the unknown selectivity and then
//! collapses it according to user preference:
//!
//! 1. **Observe** — evaluate the query's predicates against a precomputed
//!    uniform sample (a [join synopsis](rqo_stats::synopsis) for FK-join
//!    expressions), yielding `k` satisfying tuples out of `n`.
//! 2. **Infer** — by Bayes's rule with a [`Prior`] (Jeffreys by default),
//!    the posterior over selectivity is `Beta(k + a₀, n − k + b₀)`
//!    ([`SelectivityPosterior`]).
//! 3. **Collapse** — return the posterior quantile at the
//!    [`ConfidenceThreshold`] `T`: the estimator is "`T`-percent sure" the
//!    true selectivity does not exceed the returned value.  Because every
//!    plan operator's cost is monotone in input cardinality, feeding this
//!    percentile *selectivity* through an ordinary cost model yields
//!    exactly the `T`-percentile of the plan's *cost* distribution
//!    (§3.1.1) — so nothing outside the cardinality-estimation module has
//!    to know distributions exist.
//!
//! Raising `T` makes the optimizer conservative (it assumes predicates are
//! less selective than they look, favouring plans whose cost is flat in
//! selectivity); lowering it makes the optimizer aggressive.  The paper's
//! recommended presets are captured by [`RobustnessLevel`].
//!
//! The crate also implements the paper's §3.5 extensions: fallback to
//! independent per-table samples with the AVI assumption when no covering
//! synopsis exists, "magic" constants/distributions when no statistics
//! exist at all ([`MagicPolicy`]), and sample-based distinct-value
//! estimation for `GROUP BY`.

#![warn(missing_docs)]

pub mod adaptive;
pub mod confidence;
pub mod config;
pub mod estimator;
pub mod feedback;
pub mod groupby;
pub mod magic;
pub mod onthefly;
pub mod penalty;
pub mod posterior;
pub mod prior;
pub mod service;

pub use adaptive::{AdaptivePolicy, DEFAULT_GUARD_BOUND};
pub use confidence::{cost_at_threshold, ConfidenceThreshold, RobustnessLevel};
pub use config::{EstimationStrategy, EstimatorConfig};
pub use estimator::{
    CardinalityEstimator, DistributionalHistogramEstimator, EstimateSource, EstimationRequest,
    HistogramEstimator, OracleEstimator, RobustEstimator, SelectivityEstimate,
};
pub use feedback::FeedbackStore;
pub use magic::MagicPolicy;
pub use onthefly::OnTheFlyEstimator;
pub use penalty::{
    expected_penalties, penalty_grid, select_min_penalty, PenaltyScore, PlanSelection,
};
pub use posterior::SelectivityPosterior;
pub use prior::Prior;
pub use service::{QueryToken, ServiceConfig, StopReason};
