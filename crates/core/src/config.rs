//! Estimator configuration: system-wide defaults plus per-query hints.
//!
//! The paper envisions the robustness knob being set two ways (§6.2.5): a
//! system configuration parameter (conservative/moderate/aggressive) used
//! by default for all queries, overridable per query through a *query
//! hint* embedded in the statement.  [`EstimatorConfig`] is the system
//! setting; the optimizer applies hints by calling
//! [`EstimatorConfig::with_threshold`] for the hinted query.

use crate::confidence::{ConfidenceThreshold, RobustnessLevel};
use crate::magic::MagicPolicy;
use crate::prior::Prior;

/// How the posterior is collapsed to a single selectivity — the knob for
/// the ablation against the least-expected-cost literature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimationStrategy {
    /// The paper's rule: the posterior quantile at the confidence
    /// threshold.
    Percentile(ConfidenceThreshold),
    /// The posterior mean — what a least-expected-cost optimizer would use
    /// when cost is linear in selectivity ([6, 7, 10] in the paper).
    PosteriorMean,
    /// The classical maximum-likelihood point estimate `k/n` (plain
    /// sampling with no Bayesian treatment).
    MaximumLikelihood,
}

impl EstimationStrategy {
    /// The effective confidence threshold: percentile strategies report
    /// their own; the others behave like a median-ish point estimator and
    /// use `T = 50%` where a threshold is needed (e.g. magic fallbacks).
    pub fn threshold(&self) -> ConfidenceThreshold {
        match self {
            EstimationStrategy::Percentile(t) => *t,
            _ => ConfidenceThreshold::new(0.5),
        }
    }
}

/// System-wide estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Collapse strategy (default: percentile at `T = 80%`).
    pub strategy: EstimationStrategy,
    /// Prior over selectivity (default: Jeffreys).
    pub prior: Prior,
    /// Fallback when no statistics cover a predicate.
    pub magic: MagicPolicy,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            strategy: EstimationStrategy::Percentile(RobustnessLevel::Moderate.threshold()),
            prior: Prior::Jeffreys,
            magic: MagicPolicy::default(),
        }
    }
}

impl EstimatorConfig {
    /// A config using the percentile rule at the given threshold.
    pub fn with_threshold(threshold: ConfidenceThreshold) -> Self {
        Self {
            strategy: EstimationStrategy::Percentile(threshold),
            ..Self::default()
        }
    }

    /// A config from an administrator preset.
    pub fn from_level(level: RobustnessLevel) -> Self {
        Self::with_threshold(level.threshold())
    }

    /// This config with a per-query threshold hint applied.
    pub fn hinted(mut self, threshold: ConfidenceThreshold) -> Self {
        self.strategy = EstimationStrategy::Percentile(threshold);
        self
    }

    /// The effective threshold.
    pub fn threshold(&self) -> ConfidenceThreshold {
        self.strategy.threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_recommendation() {
        let c = EstimatorConfig::default();
        assert_eq!(c.threshold().percent(), 80.0);
        assert_eq!(c.prior, Prior::Jeffreys);
    }

    #[test]
    fn presets_and_hints() {
        let c = EstimatorConfig::from_level(RobustnessLevel::Conservative);
        assert_eq!(c.threshold().percent(), 95.0);
        let hinted = c.hinted(ConfidenceThreshold::new(0.5));
        assert_eq!(hinted.threshold().percent(), 50.0);
        // Original untouched (copy semantics).
        assert_eq!(c.threshold().percent(), 95.0);
    }

    #[test]
    fn strategy_thresholds() {
        assert_eq!(
            EstimationStrategy::PosteriorMean.threshold().percent(),
            50.0
        );
        assert_eq!(
            EstimationStrategy::MaximumLikelihood.threshold().percent(),
            50.0
        );
        assert_eq!(
            EstimationStrategy::Percentile(ConfidenceThreshold::new(0.95))
                .threshold()
                .percent(),
            95.0
        );
    }
}
