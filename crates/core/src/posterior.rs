//! The Bayesian selectivity posterior (paper §3.3, Equation 2).
//!
//! Sample tuples are drawn uniformly with replacement, so whether each
//! satisfies the predicate is an i.i.d. Bernoulli(p) observation of the
//! unknown selectivity `p`.  With a `Beta(a₀, b₀)` prior and `k` of `n`
//! tuples satisfying the predicate, Bayes's rule gives the posterior
//!
//! ```text
//! f(z | X) ∝ z^(k + a₀ − 1) (1 − z)^(n − k + b₀ − 1)  =  Beta(k + a₀, n − k + b₀)
//! ```
//!
//! Under the Jeffreys prior this is the paper's `Beta(k + ½, n − k + ½)`.

use rqo_math::BetaDistribution;

use crate::confidence::ConfidenceThreshold;
use crate::prior::Prior;

/// The posterior distribution over a predicate's selectivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityPosterior {
    dist: BetaDistribution,
    observed_k: usize,
    observed_n: usize,
}

impl SelectivityPosterior {
    /// Posterior after observing `k` of `n` sample tuples satisfying the
    /// predicate, under the given prior.
    ///
    /// # Panics
    ///
    /// Panics when `k > n`.
    pub fn from_observation(k: usize, n: usize, prior: Prior) -> Self {
        assert!(k <= n, "observed k={k} > n={n}");
        let (a0, b0) = prior.shape();
        Self {
            dist: BetaDistribution::new(k as f64 + a0, (n - k) as f64 + b0),
            observed_k: k,
            observed_n: n,
        }
    }

    /// A posterior that is exactly a given Beta distribution (used for
    /// "magic distributions" and for tests).
    pub fn from_distribution(dist: BetaDistribution) -> Self {
        Self {
            dist,
            observed_k: 0,
            observed_n: 0,
        }
    }

    /// The number of satisfying sample tuples.
    pub fn observed_k(&self) -> usize {
        self.observed_k
    }

    /// The sample size.
    pub fn observed_n(&self) -> usize {
        self.observed_n
    }

    /// The underlying Beta distribution.
    pub fn distribution(&self) -> &BetaDistribution {
        &self.dist
    }

    /// Posterior mean — the estimate a *least-expected-cost* policy would
    /// use for linear costs.
    pub fn mean(&self) -> f64 {
        self.dist.mean()
    }

    /// Posterior standard deviation — the estimation uncertainty, which
    /// shrinks as `1/√n`.
    pub fn std_dev(&self) -> f64 {
        self.dist.std_dev()
    }

    /// The maximum-likelihood point estimate `k/n` (what a classical
    /// sampling estimator would report).  `0` for an empty sample.
    pub fn mle(&self) -> f64 {
        if self.observed_n == 0 {
            0.0
        } else {
            self.observed_k as f64 / self.observed_n as f64
        }
    }

    /// `Pr[selectivity ≤ s]`.
    pub fn cdf(&self, s: f64) -> f64 {
        self.dist.cdf(s)
    }

    /// Probability density at `s`.
    pub fn pdf(&self, s: f64) -> f64 {
        self.dist.pdf(s)
    }

    /// The selectivity at a confidence threshold: the smallest `s` with
    /// `Pr[selectivity ≤ s] ≥ T` — the paper's `cdf⁻¹(T)` (§3.4, step 3).
    pub fn at_threshold(&self, t: ConfidenceThreshold) -> f64 {
        self.dist.quantile(t.value())
    }

    /// An equal-tailed credible interval covering `mass` of the posterior.
    ///
    /// # Panics
    ///
    /// Panics when `mass ∉ (0, 1)`.
    pub fn credible_interval(&self, mass: f64) -> (f64, f64) {
        assert!(
            mass > 0.0 && mass < 1.0,
            "credible mass {mass} outside (0, 1)"
        );
        let tail = (1.0 - mass) / 2.0;
        (self.dist.quantile(tail), self.dist.quantile(1.0 - tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> ConfidenceThreshold {
        ConfidenceThreshold::new(x)
    }

    #[test]
    fn jeffreys_posterior_shapes() {
        let p = SelectivityPosterior::from_observation(10, 100, Prior::Jeffreys);
        assert!((p.distribution().alpha() - 10.5).abs() < 1e-12);
        assert!((p.distribution().beta() - 90.5).abs() < 1e-12);
        assert_eq!(p.observed_k(), 10);
        assert_eq!(p.observed_n(), 100);
    }

    #[test]
    fn paper_running_example() {
        // §3.4: k=10, n=100 under Jeffreys ⇒ estimates 7.8% / 10.1% / 12.8%
        // at thresholds 20% / 50% / 80%.
        let p = SelectivityPosterior::from_observation(10, 100, Prior::Jeffreys);
        assert!((p.at_threshold(t(0.20)) - 0.078).abs() < 0.002);
        assert!((p.at_threshold(t(0.50)) - 0.101).abs() < 0.002);
        assert!((p.at_threshold(t(0.80)) - 0.128).abs() < 0.002);
    }

    #[test]
    fn figure_2_inputs() {
        // §3.1.1: Figure 2 assumes 50 of 200 sampled tuples satisfy the
        // predicates; posterior mass should concentrate near 25%.
        let p = SelectivityPosterior::from_observation(50, 200, Prior::Jeffreys);
        assert!((p.mean() - 0.25).abs() < 0.01);
        let (lo, hi) = p.credible_interval(0.95);
        assert!(lo > 0.18 && hi < 0.32, "interval [{lo}, {hi}]");
    }

    #[test]
    fn prior_choice_barely_matters_at_scale() {
        // Figure 4's message: uniform vs Jeffreys is negligible even at
        // n = 100.
        let j = SelectivityPosterior::from_observation(10, 100, Prior::Jeffreys);
        let u = SelectivityPosterior::from_observation(10, 100, Prior::Uniform);
        for q in [0.05, 0.5, 0.95] {
            let dj = j.at_threshold(t(q));
            let du = u.at_threshold(t(q));
            assert!((dj - du).abs() < 0.01, "q={q}: {dj} vs {du}");
        }
    }

    #[test]
    fn sample_size_matters() {
        // Figure 4's other message: n=100,k=10 vs n=500,k=50 have the same
        // MLE but very different spreads.
        let small = SelectivityPosterior::from_observation(10, 100, Prior::Jeffreys);
        let large = SelectivityPosterior::from_observation(50, 500, Prior::Jeffreys);
        assert!((small.mle() - large.mle()).abs() < 1e-12);
        assert!(small.std_dev() > 2.0 * large.std_dev());
    }

    #[test]
    fn zero_and_full_observations() {
        // k = 0 still leaves probability on nonzero selectivities — the
        // "self-adjusting" behaviour of §6.2.4: a tiny sample can never be
        // 95% sure the selectivity is below a small crossover.
        let none = SelectivityPosterior::from_observation(0, 50, Prior::Jeffreys);
        assert_eq!(none.mle(), 0.0);
        assert!(none.at_threshold(t(0.95)) > 0.01);
        let all = SelectivityPosterior::from_observation(50, 50, Prior::Jeffreys);
        assert!(all.at_threshold(t(0.05)) < 0.99);
        assert!(all.mean() > 0.95);
    }

    #[test]
    fn threshold_monotonicity() {
        let p = SelectivityPosterior::from_observation(5, 500, Prior::Jeffreys);
        let mut prev = 0.0;
        for q in [0.05, 0.2, 0.5, 0.8, 0.95] {
            let s = p.at_threshold(t(q));
            assert!(s >= prev, "not monotone at {q}");
            prev = s;
        }
    }

    #[test]
    fn mean_between_prior_mean_and_mle() {
        // Posterior mean is a convex combination of prior mean and MLE.
        let prior = Prior::custom(2.0, 2.0); // mean 0.5
        let p = SelectivityPosterior::from_observation(10, 100, prior);
        let mle = 0.1;
        assert!(p.mean() > mle && p.mean() < 0.5, "mean {}", p.mean());
    }

    #[test]
    fn credible_interval_contains_mean() {
        let p = SelectivityPosterior::from_observation(30, 300, Prior::Jeffreys);
        let (lo, hi) = p.credible_interval(0.9);
        assert!(lo < p.mean() && p.mean() < hi);
        assert!((p.cdf(hi) - p.cdf(lo) - 0.9).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "k=5 > n=2")]
    fn rejects_k_above_n() {
        SelectivityPosterior::from_observation(5, 2, Prior::Jeffreys);
    }
}
