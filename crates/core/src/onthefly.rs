//! On-the-fly sampling estimation — the *prior art* the paper's
//! precomputed join synopses replace (§3.2: "In contrast to previous
//! sampling-based approaches, which estimate selectivity based on samples
//! that are constructed on the fly at query execution time").
//!
//! This estimator draws a fresh uniform sample of each predicate-bearing
//! table at *estimation time* (Lipton/Naughton/Schneider-style adaptive
//! sampling, simplified to fixed-size draws).  It exists as a measurable baseline
//! for the two arguments the paper makes for precomputation:
//!
//! 1. **Run-time cost**: every optimizer call pays one random I/O per
//!    sampled tuple, charged to [`OnTheFlyEstimator::sampling_cost`] — at
//!    500 tuples/predicate that is ~1.75 simulated seconds *per estimate*
//!    under the default disk parameters, often more than executing the
//!    query.
//! 2. **Joins**: independent per-table samples almost never contain
//!    matching join keys, so join selectivities must fall back to the AVI
//!    product of per-table estimates — precisely the failure mode the
//!    join synopsis exists to avoid.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rqo_stats::sampler::sample_with_replacement;
use rqo_storage::{Catalog, CostTracker};

use crate::config::{EstimationStrategy, EstimatorConfig};
use crate::estimator::{
    CardinalityEstimator, EstimateSource, EstimationRequest, SelectivityEstimate,
};
use crate::posterior::SelectivityPosterior;

/// A per-estimate, per-table sampling estimator (no precomputation).
#[derive(Debug)]
pub struct OnTheFlyEstimator {
    catalog: Arc<Catalog>,
    config: EstimatorConfig,
    sample_size: usize,
    seed: u64,
    calls: AtomicU64,
    sampled_tuples: AtomicU64,
}

impl OnTheFlyEstimator {
    /// Creates the estimator; each estimate draws fresh `sample_size`-
    /// tuple samples, deterministically derived from `seed` and the call
    /// counter.
    pub fn new(
        catalog: Arc<Catalog>,
        config: EstimatorConfig,
        sample_size: usize,
        seed: u64,
    ) -> Self {
        Self {
            catalog,
            config,
            sample_size,
            seed,
            calls: AtomicU64::new(0),
            sampled_tuples: AtomicU64::new(0),
        }
    }

    /// Number of estimation calls served so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// The cumulative simulated I/O of all run-time sampling so far: one
    /// random page read per sampled tuple (samples are scattered by
    /// construction).  This is the overhead precomputed synopses
    /// eliminate.
    pub fn sampling_cost(&self) -> CostTracker {
        let mut t = CostTracker::new();
        t.charge_random_ios(self.sampled_tuples.load(Ordering::Relaxed));
        t
    }

    fn collapse(&self, posterior: &SelectivityPosterior) -> f64 {
        match self.config.strategy {
            EstimationStrategy::Percentile(t) => posterior.at_threshold(t),
            EstimationStrategy::PosteriorMean => posterior.mean(),
            EstimationStrategy::MaximumLikelihood => posterior.mle(),
        }
    }
}

impl CardinalityEstimator for OnTheFlyEstimator {
    fn name(&self) -> &str {
        "on-the-fly-sampling"
    }

    fn estimate(&self, request: &EstimationRequest<'_>) -> SelectivityEstimate {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let mut rng = StdRng::seed_from_u64(self.seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // Per-table fresh samples, combined under AVI: without a
        // precomputed join, independent samples cannot observe cross-table
        // correlation (§3.2's motivating failure).
        let mut selectivity = 1.0;
        let mut single_posterior = None;
        for (table, expr) in &request.predicates {
            let t = self.catalog.table(table).expect("table exists");
            let rids = sample_with_replacement(t, self.sample_size, &mut rng);
            self.sampled_tuples
                .fetch_add(rids.len() as u64, Ordering::Relaxed);
            if rids.is_empty() {
                selectivity *= self.config.magic.selectivity(self.config.threshold());
                continue;
            }
            let bound = expr.bind(t.schema()).expect("predicate binds");
            let k = rids
                .iter()
                .filter(|&&rid| rqo_expr::eval_bool(&bound, &t.row(rid)))
                .count();
            let posterior =
                SelectivityPosterior::from_observation(k, rids.len(), self.config.prior);
            selectivity *= self.collapse(&posterior);
            single_posterior = Some(posterior);
        }
        let single_predicate = request.predicates.len() == 1;
        SelectivityEstimate {
            selectivity,
            posterior: if single_predicate {
                single_posterior
            } else {
                None
            },
            source: EstimateSource::IndependentSamples,
        }
    }

    fn hinted(
        &self,
        threshold: crate::confidence::ConfidenceThreshold,
    ) -> Option<Box<dyn CardinalityEstimator>> {
        Some(Box::new(Self::new(
            Arc::clone(&self.catalog),
            self.config.hinted(threshold),
            self.sample_size,
            self.seed,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::ConfidenceThreshold;
    use crate::estimator::OracleEstimator;
    use rqo_datagen::{workload, TpchConfig, TpchData};
    use rqo_expr::Expr;
    use rqo_storage::CostParams;

    fn catalog() -> Arc<Catalog> {
        Arc::new(
            TpchData::generate(&TpchConfig {
                scale_factor: 0.01,
                seed: 99,
            })
            .into_catalog(),
        )
    }

    fn estimator(cat: &Arc<Catalog>) -> OnTheFlyEstimator {
        OnTheFlyEstimator::new(
            Arc::clone(cat),
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.5)),
            500,
            7,
        )
    }

    #[test]
    fn single_table_estimates_track_truth() {
        let cat = catalog();
        let est = estimator(&cat);
        let pred = Expr::col("p_x").lt(Expr::lit(100i64));
        let truth = workload::true_selectivity(cat.table("part").unwrap(), &pred);
        let r = est.estimate(&EstimationRequest::single("part", &pred));
        assert!(
            (r.selectivity - truth).abs() < 0.05,
            "{} vs {truth}",
            r.selectivity
        );
        assert!(r.posterior.is_some());
        assert_eq!(r.source, EstimateSource::IndependentSamples);
    }

    #[test]
    fn join_correlation_is_invisible() {
        // The single-table (exp1) correlated conjunction: the on-the-fly
        // sampler evaluates the whole predicate on one table's sample, so
        // here it does fine...
        let cat = catalog();
        let est = estimator(&cat);
        let oracle = OracleEstimator::new(Arc::clone(&cat));
        let single = workload::exp1_lineitem_predicate(130); // truth 0
        let r = est.estimate(&EstimationRequest::single("lineitem", &single));
        assert!(r.selectivity < 0.01, "{}", r.selectivity);

        // ...but a *cross-table* correlation is invisible: the exp3 star
        // query's joint match fraction at level 9 is ~10%, yet independent
        // dim samples see only the 10% marginals and AVI multiplies them
        // to 0.1%.
        let star = Arc::new(
            rqo_datagen::StarData::generate(&rqo_datagen::StarConfig {
                fact_rows: 50_000,
                seed: 3,
            })
            .into_catalog(),
        );
        let est = OnTheFlyEstimator::new(
            Arc::clone(&star),
            EstimatorConfig::with_threshold(ConfidenceThreshold::new(0.5)),
            500,
            7,
        );
        let dpred = workload::exp3_dim_predicate(9);
        let req = EstimationRequest::new(
            vec!["fact", "dim1", "dim2", "dim3"],
            vec![("dim1", &dpred), ("dim2", &dpred), ("dim3", &dpred)],
        );
        let otf = est.estimate(&req).selectivity;
        let oracle_star = OracleEstimator::new(Arc::clone(&star));
        let truth = oracle_star.estimate(&req).selectivity;
        assert!(truth > 0.08, "designed level-9 fraction, got {truth}");
        assert!(
            otf < truth / 20.0,
            "AVI-composed on-the-fly estimate {otf} cannot see the joint {truth}"
        );
        let _ = oracle; // single-table oracle kept for symmetry
    }

    #[test]
    fn sampling_cost_accumulates_per_call() {
        let cat = catalog();
        let est = estimator(&cat);
        let pred = Expr::col("p_x").lt(Expr::lit(100i64));
        let req = EstimationRequest::single("part", &pred);
        assert_eq!(est.calls(), 0);
        for _ in 0..4 {
            est.estimate(&req);
        }
        assert_eq!(est.calls(), 4);
        let cost = est.sampling_cost();
        assert_eq!(cost.random_ios, 4 * 500);
        // Under default disk parameters that is 4 × 1.75 simulated seconds
        // of pure estimation I/O — the overhead precomputation removes.
        let params = CostParams::default();
        assert!(cost.seconds(&params) > 6.9, "{}", cost.seconds(&params));
    }

    #[test]
    fn estimates_vary_across_calls_but_are_seed_deterministic() {
        let cat = catalog();
        let pred = workload::exp1_lineitem_predicate(90);
        let req = EstimationRequest::single("lineitem", &pred);
        let a = estimator(&cat);
        let first = a.estimate(&req).selectivity;
        let second = a.estimate(&req).selectivity;
        // Fresh samples per call: repeated estimates of the same predicate
        // wobble (the plan-stability hazard of run-time sampling)...
        // (they *may* coincide; just ensure determinism across instances.)
        let b = estimator(&cat);
        assert_eq!(b.estimate(&req).selectivity, first);
        assert_eq!(b.estimate(&req).selectivity, second);
    }

    #[test]
    fn hint_changes_threshold() {
        let cat = catalog();
        let est = estimator(&cat);
        let hinted = est.hinted(ConfidenceThreshold::new(0.95)).unwrap();
        let pred = workload::exp1_lineitem_predicate(120);
        let req = EstimationRequest::single("lineitem", &pred);
        // Same seed and call index → same sample → higher threshold must
        // not decrease the estimate.
        let base = estimator(&cat).estimate(&req).selectivity;
        let high = hinted.estimate(&req).selectivity;
        assert!(high >= base);
        assert_eq!(est.name(), "on-the-fly-sampling");
    }
}
