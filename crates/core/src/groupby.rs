//! Distinct-value estimation for `GROUP BY` result sizes (paper §3.5,
//! "Incorporating other operators").
//!
//! The output cardinality of `GROUP BY g₁, …, g_m` is the number of
//! distinct grouping-key combinations among qualifying rows.  Following
//! the paper's sketch, this adapts sample-based distinct-value estimators
//! to the precomputed synopsis: collect the grouping keys of the sample
//! tuples that satisfy the predicates, then apply GEE scaled to the
//! estimated qualifying population.

use rqo_expr::Expr;
use rqo_stats::distinct::gee_estimate;
use rqo_stats::{JoinSynopsis, TableSketches};
use rqo_storage::Value;

/// Estimates the number of distinct values of `group_table.group_columns`
/// among the rows of the synopsis' root relation that satisfy
/// `predicates`, where `root_rows` is the root relation's cardinality.
///
/// Composite keys are handled by treating each combination as one value.
/// Returns 0 when no sample tuple qualifies (no evidence of any group).
///
/// Note: the synopsis is drawn *with* replacement (the Bayesian
/// selectivity model requires it), while GEE's analysis assumes
/// without-replacement sampling.  The duplicate probability is
/// `O(n²/N)` — negligible for the intended regime of a few hundred
/// sample tuples over many thousands of rows, but the estimate degrades
/// for samples approaching the table size.
///
/// # Panics
///
/// Panics when the group table is not covered by the synopsis or a column
/// is missing.
pub fn estimate_group_count(
    synopsis: &JoinSynopsis,
    predicates: &[(&str, &Expr)],
    group_table: &str,
    group_columns: &[&str],
    root_rows: usize,
) -> f64 {
    let component = synopsis
        .component(group_table)
        .unwrap_or_else(|| panic!("table {group_table:?} not covered by synopsis"));
    let ordinals: Vec<usize> = group_columns
        .iter()
        .map(|c| component.schema().expect_index(c))
        .collect();

    // Bind predicates once per component.
    let bound: Vec<(&rqo_storage::Table, Expr)> = predicates
        .iter()
        .map(|(table, expr)| {
            let comp = synopsis
                .component(table)
                .unwrap_or_else(|| panic!("table {table:?} not covered by synopsis"));
            (comp, expr.bind(comp.schema()).expect("predicate binds"))
        })
        .collect();

    let mut keys: Vec<Value> = Vec::new();
    let mut row: Vec<Value> = Vec::new();
    for i in 0..synopsis.sample_size() as u32 {
        let qualifies = bound.iter().all(|(comp, expr)| {
            row.clear();
            row.extend((0..comp.schema().len()).map(|c| comp.value(i, c)));
            rqo_expr::eval_bool(expr, &row)
        });
        if !qualifies {
            continue;
        }
        // Composite keys: fold the per-column values into one hashable
        // string key (exact value tuples would also work; a delimited
        // rendering keeps the GEE input a flat Value).
        if ordinals.len() == 1 {
            keys.push(component.value(i, ordinals[0]));
        } else {
            let rendered = ordinals
                .iter()
                .map(|&c| component.value(i, c).to_string())
                .collect::<Vec<_>>()
                .join("\u{1f}");
            keys.push(Value::str(rendered.as_str()));
        }
    }

    if keys.is_empty() {
        return 0.0;
    }
    // Scale to the estimated qualifying population: the MLE fraction of
    // qualifying tuples times the root cardinality.
    let qualifying_fraction = keys.len() as f64 / synopsis.sample_size() as f64;
    let qualifying_population = (qualifying_fraction * root_rows as f64).max(1.0) as u64;
    gee_estimate(&keys, qualifying_population)
}

/// Distinct-count estimate for unpredicated grouping keys from merged
/// streaming sketches, or `None` when the sketch cannot answer (a
/// column is untracked).
///
/// Single columns read the table-level merge of the per-partition HLL
/// sketches directly.  Composite keys use the product upper bound
/// (the sketch hashes columns independently), clamped to `root_rows`;
/// this over-counts correlated keys, which is conservative for the
/// pipeline-breaker sizing the optimizer uses the number for.
pub fn sketch_group_count(
    sketches: &TableSketches,
    group_columns: &[&str],
    root_rows: usize,
) -> Option<f64> {
    let mut product = 1.0f64;
    for col in group_columns {
        let ordinal = sketches.column_index(col)?;
        product *= sketches.column_distinct(ordinal).max(1.0);
    }
    Some(product.min(root_rows as f64).max(1.0))
}

/// [`estimate_group_count`] with streaming statistics layered in: an
/// unpredicated GROUP BY over a table with live sketches is answered
/// from the merged per-partition sketches (they track every ingested
/// row, not a point-in-time sample); everything else — predicates,
/// untracked tables — falls back to the sample-based GEE path, which
/// remains the oracle the sketch estimates are tested against.
pub fn estimate_group_count_streaming(
    synopsis: &JoinSynopsis,
    sketches: Option<&TableSketches>,
    predicates: &[(&str, &Expr)],
    group_table: &str,
    group_columns: &[&str],
    root_rows: usize,
) -> f64 {
    if predicates.is_empty() {
        if let Some(ts) = sketches.filter(|ts| ts.table() == group_table) {
            if let Some(est) = sketch_group_count(ts, group_columns, root_rows) {
                return est;
            }
        }
    }
    estimate_group_count(synopsis, predicates, group_table, group_columns, root_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_datagen::{StarConfig, StarData, TpchConfig, TpchData};
    use rqo_stats::JoinSynopsis;

    #[test]
    fn group_by_low_cardinality_column() {
        // part.p_brand has 25 distinct values; with a 500-tuple sample
        // every brand is seen many times, so the estimate should be ≈25.
        let cat = TpchData::generate(&TpchConfig {
            scale_factor: 0.02,
            seed: 31,
        })
        .into_catalog();
        let syn = JoinSynopsis::build(&cat, "part", 500, 1);
        let rows = cat.table("part").unwrap().num_rows();
        let est = estimate_group_count(&syn, &[], "part", &["p_brand"], rows);
        assert!((20.0..30.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn group_by_through_join_with_predicate() {
        // GROUP BY d_attr over fact ⋈ dim1 restricted to d_attr >= 5: five
        // groups survive.
        let cat = StarData::generate(&StarConfig {
            fact_rows: 20_000,
            seed: 3,
        })
        .into_catalog();
        let syn = JoinSynopsis::build(&cat, "fact", 500, 2);
        let pred = Expr::col("d_attr").ge(Expr::lit(5i64));
        let rows = cat.table("fact").unwrap().num_rows();
        let est = estimate_group_count(&syn, &[("dim1", &pred)], "dim1", &["d_attr"], rows);
        assert!((4.0..6.5).contains(&est), "estimate {est}");
    }

    #[test]
    fn composite_group_keys() {
        let cat = StarData::generate(&StarConfig {
            fact_rows: 10_000,
            seed: 4,
        })
        .into_catalog();
        let syn = JoinSynopsis::build(&cat, "fact", 400, 5);
        let rows = cat.table("fact").unwrap().num_rows();
        // (d_attr of dim1) has 10 values; composite with itself stays 10.
        let est = estimate_group_count(&syn, &[], "dim1", &["d_attr", "d_attr"], rows);
        assert!((8.0..12.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn impossible_predicate_gives_zero_groups() {
        let cat = TpchData::generate(&TpchConfig {
            scale_factor: 0.005,
            seed: 6,
        })
        .into_catalog();
        let syn = JoinSynopsis::build(&cat, "part", 200, 7);
        let none = Expr::col("p_x").lt(Expr::lit(0i64));
        let rows = cat.table("part").unwrap().num_rows();
        let est = estimate_group_count(&syn, &[("part", &none)], "part", &["p_brand"], rows);
        assert_eq!(est, 0.0);
    }

    #[test]
    fn streaming_sketch_agrees_with_oracle_and_tracks_ingest() {
        let cat = TpchData::generate(&TpchConfig {
            scale_factor: 0.02,
            seed: 31,
        })
        .into_catalog();
        let part = cat.table("part").unwrap();
        let syn = JoinSynopsis::build(&cat, "part", 500, 1);
        let rows = part.num_rows();
        let mut sketches = TableSketches::seeded_from_table(part, None, 14, 500, 9);

        // Oracle agreement on the frozen table: p_brand has 25 distinct
        // values, both estimators must land near it.
        let oracle = estimate_group_count(&syn, &[], "part", &["p_brand"], rows);
        let streamed =
            estimate_group_count_streaming(&syn, Some(&sketches), &[], "part", &["p_brand"], rows);
        assert!((20.0..30.0).contains(&oracle), "oracle {oracle}");
        assert!((23.0..27.0).contains(&streamed), "sketch {streamed}");

        // Stream 50 rows carrying 25 brand-new brands: the sketch sees
        // them immediately, the offline sample cannot.
        let brand_col = part.schema().expect_index("p_brand");
        for i in 0..50i64 {
            let mut row = part.row(0);
            row[brand_col] = rqo_storage::Value::str(format!("Brand#NEW{}", i % 25).as_str());
            sketches.observe(0, &row);
        }
        let after = estimate_group_count_streaming(
            &syn,
            Some(&sketches),
            &[],
            "part",
            &["p_brand"],
            rows + 50,
        );
        assert!((45.0..55.0).contains(&after), "sketch after ingest {after}");
        let stale = estimate_group_count(&syn, &[], "part", &["p_brand"], rows + 50);
        assert!(
            stale < 35.0,
            "offline sample cannot see new brands: {stale}"
        );

        // Predicated queries fall back to the sample-based oracle.
        let pred = Expr::col("p_x").ge(Expr::lit(0i64));
        let with_pred = estimate_group_count_streaming(
            &syn,
            Some(&sketches),
            &[("part", &pred)],
            "part",
            &["p_brand"],
            rows,
        );
        let oracle_pred =
            estimate_group_count(&syn, &[("part", &pred)], "part", &["p_brand"], rows);
        assert_eq!(with_pred, oracle_pred);

        // Composite keys clamp at the root cardinality.
        let comp = sketch_group_count(&sketches, &["p_partkey", "p_brand"], rows).unwrap();
        assert!(comp <= rows as f64);
        assert!(sketch_group_count(&sketches, &["missing"], rows).is_none());
    }

    #[test]
    fn high_cardinality_key_scales_up() {
        // Grouping by p_partkey (unique): the estimate must scale far
        // beyond the sample's distinct count toward the population size.
        let cat = TpchData::generate(&TpchConfig {
            scale_factor: 0.05, // 10_000 parts
            seed: 8,
        })
        .into_catalog();
        let syn = JoinSynopsis::build(&cat, "part", 400, 9);
        let rows = cat.table("part").unwrap().num_rows();
        let est = estimate_group_count(&syn, &[], "part", &["p_partkey"], rows);
        assert!(est > 1_000.0, "estimate {est}");
        assert!(est <= rows as f64);
    }
}
