//! Distinct-value estimation for `GROUP BY` result sizes (paper §3.5,
//! "Incorporating other operators").
//!
//! The output cardinality of `GROUP BY g₁, …, g_m` is the number of
//! distinct grouping-key combinations among qualifying rows.  Following
//! the paper's sketch, this adapts sample-based distinct-value estimators
//! to the precomputed synopsis: collect the grouping keys of the sample
//! tuples that satisfy the predicates, then apply GEE scaled to the
//! estimated qualifying population.

use rqo_expr::Expr;
use rqo_stats::distinct::gee_estimate;
use rqo_stats::JoinSynopsis;
use rqo_storage::Value;

/// Estimates the number of distinct values of `group_table.group_columns`
/// among the rows of the synopsis' root relation that satisfy
/// `predicates`, where `root_rows` is the root relation's cardinality.
///
/// Composite keys are handled by treating each combination as one value.
/// Returns 0 when no sample tuple qualifies (no evidence of any group).
///
/// Note: the synopsis is drawn *with* replacement (the Bayesian
/// selectivity model requires it), while GEE's analysis assumes
/// without-replacement sampling.  The duplicate probability is
/// `O(n²/N)` — negligible for the intended regime of a few hundred
/// sample tuples over many thousands of rows, but the estimate degrades
/// for samples approaching the table size.
///
/// # Panics
///
/// Panics when the group table is not covered by the synopsis or a column
/// is missing.
pub fn estimate_group_count(
    synopsis: &JoinSynopsis,
    predicates: &[(&str, &Expr)],
    group_table: &str,
    group_columns: &[&str],
    root_rows: usize,
) -> f64 {
    let component = synopsis
        .component(group_table)
        .unwrap_or_else(|| panic!("table {group_table:?} not covered by synopsis"));
    let ordinals: Vec<usize> = group_columns
        .iter()
        .map(|c| component.schema().expect_index(c))
        .collect();

    // Bind predicates once per component.
    let bound: Vec<(&rqo_storage::Table, Expr)> = predicates
        .iter()
        .map(|(table, expr)| {
            let comp = synopsis
                .component(table)
                .unwrap_or_else(|| panic!("table {table:?} not covered by synopsis"));
            (comp, expr.bind(comp.schema()).expect("predicate binds"))
        })
        .collect();

    let mut keys: Vec<Value> = Vec::new();
    let mut row: Vec<Value> = Vec::new();
    for i in 0..synopsis.sample_size() as u32 {
        let qualifies = bound.iter().all(|(comp, expr)| {
            row.clear();
            row.extend((0..comp.schema().len()).map(|c| comp.value(i, c)));
            rqo_expr::eval_bool(expr, &row)
        });
        if !qualifies {
            continue;
        }
        // Composite keys: fold the per-column values into one hashable
        // string key (exact value tuples would also work; a delimited
        // rendering keeps the GEE input a flat Value).
        if ordinals.len() == 1 {
            keys.push(component.value(i, ordinals[0]));
        } else {
            let rendered = ordinals
                .iter()
                .map(|&c| component.value(i, c).to_string())
                .collect::<Vec<_>>()
                .join("\u{1f}");
            keys.push(Value::str(rendered.as_str()));
        }
    }

    if keys.is_empty() {
        return 0.0;
    }
    // Scale to the estimated qualifying population: the MLE fraction of
    // qualifying tuples times the root cardinality.
    let qualifying_fraction = keys.len() as f64 / synopsis.sample_size() as f64;
    let qualifying_population = (qualifying_fraction * root_rows as f64).max(1.0) as u64;
    gee_estimate(&keys, qualifying_population)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqo_datagen::{StarConfig, StarData, TpchConfig, TpchData};
    use rqo_stats::JoinSynopsis;

    #[test]
    fn group_by_low_cardinality_column() {
        // part.p_brand has 25 distinct values; with a 500-tuple sample
        // every brand is seen many times, so the estimate should be ≈25.
        let cat = TpchData::generate(&TpchConfig {
            scale_factor: 0.02,
            seed: 31,
        })
        .into_catalog();
        let syn = JoinSynopsis::build(&cat, "part", 500, 1);
        let rows = cat.table("part").unwrap().num_rows();
        let est = estimate_group_count(&syn, &[], "part", &["p_brand"], rows);
        assert!((20.0..30.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn group_by_through_join_with_predicate() {
        // GROUP BY d_attr over fact ⋈ dim1 restricted to d_attr >= 5: five
        // groups survive.
        let cat = StarData::generate(&StarConfig {
            fact_rows: 20_000,
            seed: 3,
        })
        .into_catalog();
        let syn = JoinSynopsis::build(&cat, "fact", 500, 2);
        let pred = Expr::col("d_attr").ge(Expr::lit(5i64));
        let rows = cat.table("fact").unwrap().num_rows();
        let est = estimate_group_count(&syn, &[("dim1", &pred)], "dim1", &["d_attr"], rows);
        assert!((4.0..6.5).contains(&est), "estimate {est}");
    }

    #[test]
    fn composite_group_keys() {
        let cat = StarData::generate(&StarConfig {
            fact_rows: 10_000,
            seed: 4,
        })
        .into_catalog();
        let syn = JoinSynopsis::build(&cat, "fact", 400, 5);
        let rows = cat.table("fact").unwrap().num_rows();
        // (d_attr of dim1) has 10 values; composite with itself stays 10.
        let est = estimate_group_count(&syn, &[], "dim1", &["d_attr", "d_attr"], rows);
        assert!((8.0..12.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn impossible_predicate_gives_zero_groups() {
        let cat = TpchData::generate(&TpchConfig {
            scale_factor: 0.005,
            seed: 6,
        })
        .into_catalog();
        let syn = JoinSynopsis::build(&cat, "part", 200, 7);
        let none = Expr::col("p_x").lt(Expr::lit(0i64));
        let rows = cat.table("part").unwrap().num_rows();
        let est = estimate_group_count(&syn, &[("part", &none)], "part", &["p_brand"], rows);
        assert_eq!(est, 0.0);
    }

    #[test]
    fn high_cardinality_key_scales_up() {
        // Grouping by p_partkey (unique): the estimate must scale far
        // beyond the sample's distinct count toward the population size.
        let cat = TpchData::generate(&TpchConfig {
            scale_factor: 0.05, // 10_000 parts
            seed: 8,
        })
        .into_catalog();
        let syn = JoinSynopsis::build(&cat, "part", 400, 9);
        let rows = cat.table("part").unwrap().num_rows();
        let est = estimate_group_count(&syn, &[], "part", &["p_partkey"], rows);
        assert!(est > 1_000.0, "estimate {est}");
        assert!(est <= rows as f64);
    }
}
