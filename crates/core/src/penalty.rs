//! Expected-penalty plan selection (PARQO-style).
//!
//! The paper's robustness knob collapses the whole selectivity posterior
//! into a single quantile `T` before the optimizer ever sees a number.
//! Expected-penalty selection keeps the posterior: every candidate
//! plan's cost curve is priced at a shared grid of posterior quadrature
//! nodes, and the candidate minimizing the *expected regret*
//!
//! ```text
//! penalty(i) = Σⱼ wⱼ · (cost(i, uⱼ) − minₖ cost(k, uⱼ))
//! ```
//!
//! wins.  Because every candidate is priced at the *same* nodes, the
//! common quadrature error cancels in the comparison, and a plan that is
//! near-optimal across the posterior's plausible selectivities beats one
//! that is optimal at a single point but catastrophic elsewhere.
//!
//! This module holds the selection-mode enum threaded through the
//! optimizer/engine/service stack and the (pure, deterministic) scoring
//! arithmetic; the optimizer owns candidate generation and pricing.

use std::fmt;

use crate::confidence::ConfidenceThreshold;
use rqo_math::quantile_nodes;

/// How the optimizer turns selectivity posteriors into one chosen plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlanSelection {
    /// The paper's scheme: collapse each posterior at confidence
    /// threshold `T`, then cost plans at those point selectivities.
    #[default]
    Quantile,
    /// Score candidate plans by cost regret integrated over the
    /// posterior and pick the minimum-expected-penalty candidate.
    ExpectedPenalty,
}

impl PlanSelection {
    /// Short stable label, used in plan fingerprints and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PlanSelection::Quantile => "quantile",
            PlanSelection::ExpectedPenalty => "penalty",
        }
    }

    /// Parses the demo/bench command-line spelling.
    pub fn parse(s: &str) -> Option<PlanSelection> {
        match s {
            "quantile" => Some(PlanSelection::Quantile),
            "penalty" | "expected-penalty" => Some(PlanSelection::ExpectedPenalty),
            _ => None,
        }
    }
}

impl fmt::Display for PlanSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The shared posterior-quantile grid candidates are priced on, as
/// [`ConfidenceThreshold`]s (all strictly inside `(0, 1)`) with
/// quadrature weights summing to 1.
///
/// Pricing a plan at threshold `uⱼ` collapses *every* predicate
/// posterior at quantile `uⱼ` — the comonotone approximation of the
/// joint posterior.  It reuses the §3.1.1 monotone-cost machinery
/// unchanged (cost of the `u`-quantile selectivities = `u`-quantile of
/// the cost), which is what keeps penalty mode deterministic and
/// thread-invariant for free.
pub fn penalty_grid(nodes: usize) -> Vec<(ConfidenceThreshold, f64)> {
    quantile_nodes(nodes)
        .into_iter()
        .map(|(u, w)| (ConfidenceThreshold::new(u), w))
        .collect()
}

/// One candidate's score under expected-penalty selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyScore {
    /// `Σⱼ wⱼ · cost(i, uⱼ)` — expected cost over the posterior.
    pub expected_cost: f64,
    /// `Σⱼ wⱼ · (cost(i, uⱼ) − minₖ cost(k, uⱼ))` — expected regret
    /// against the per-node best candidate.  Non-negative.
    pub expected_penalty: f64,
}

/// Scores a candidate-by-node cost matrix: `costs[i][j]` is candidate
/// `i` priced at grid node `j`, `weights[j]` the node's quadrature
/// weight.  Returns one [`PenaltyScore`] per candidate.
///
/// Panics if rows have inconsistent lengths or the matrix is empty.
pub fn expected_penalties(costs: &[Vec<f64>], weights: &[f64]) -> Vec<PenaltyScore> {
    assert!(!costs.is_empty(), "no candidates to score");
    for row in costs {
        assert_eq!(
            row.len(),
            weights.len(),
            "cost row / weight length mismatch"
        );
    }
    // Per-node lower envelope across candidates.
    let envelope: Vec<f64> = (0..weights.len())
        .map(|j| costs.iter().map(|row| row[j]).fold(f64::INFINITY, f64::min))
        .collect();
    costs
        .iter()
        .map(|row| {
            let mut expected_cost = 0.0;
            let mut expected_penalty = 0.0;
            for j in 0..weights.len() {
                expected_cost += weights[j] * row[j];
                expected_penalty += weights[j] * (row[j] - envelope[j]).max(0.0);
            }
            PenaltyScore {
                expected_cost,
                expected_penalty,
            }
        })
        .collect()
}

/// Index of the minimum-expected-penalty candidate, breaking ties by
/// lower expected cost and then by lower index — a total, deterministic
/// order, so the chosen plan never depends on iteration incidentals.
pub fn select_min_penalty(scores: &[PenaltyScore]) -> usize {
    assert!(!scores.is_empty(), "no candidates to select from");
    let mut best = 0;
    for (i, s) in scores.iter().enumerate().skip(1) {
        let b = &scores[best];
        let better = match s.expected_penalty.total_cmp(&b.expected_penalty) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                s.expected_cost.total_cmp(&b.expected_cost) == std::cmp::Ordering::Less
            }
        };
        if better {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_labels_round_trip() {
        for mode in [PlanSelection::Quantile, PlanSelection::ExpectedPenalty] {
            assert_eq!(PlanSelection::parse(mode.label()), Some(mode));
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(
            PlanSelection::parse("expected-penalty"),
            Some(PlanSelection::ExpectedPenalty)
        );
        assert_eq!(PlanSelection::parse("bogus"), None);
        assert_eq!(PlanSelection::default(), PlanSelection::Quantile);
    }

    #[test]
    fn grid_weights_sum_to_one_and_thresholds_are_interior() {
        let grid = penalty_grid(32);
        assert_eq!(grid.len(), 32);
        let total: f64 = grid.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-10);
        for &(t, _) in &grid {
            assert!(t.value() > 0.0 && t.value() < 1.0);
        }
    }

    #[test]
    fn penalty_of_the_pointwise_best_candidate_is_zero() {
        // Candidate 0 dominates everywhere: zero regret; candidate 1
        // pays its full gap.
        let costs = vec![vec![1.0, 2.0, 3.0], vec![2.0, 4.0, 3.0]];
        let weights = vec![0.25, 0.5, 0.25];
        let scores = expected_penalties(&costs, &weights);
        assert_eq!(scores[0].expected_penalty, 0.0);
        assert!((scores[1].expected_penalty - (0.25 * 1.0 + 0.5 * 2.0)).abs() < 1e-12);
        assert_eq!(select_min_penalty(&scores), 0);
    }

    #[test]
    fn crossing_curves_favor_the_hedge() {
        // Candidate 0 gambles (cheap left, disastrous right), candidate
        // 1 mirrors it, candidate 2 is a flat hedge slightly above the
        // envelope everywhere.  Under equal weights the hedge has the
        // least expected regret.
        let costs = vec![
            vec![1.0, 1.0, 50.0, 50.0],
            vec![50.0, 50.0, 1.0, 1.0],
            vec![3.0, 3.0, 3.0, 3.0],
        ];
        let weights = vec![0.25; 4];
        let scores = expected_penalties(&costs, &weights);
        assert_eq!(select_min_penalty(&scores), 2);
        assert!((scores[2].expected_penalty - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ties_break_by_expected_cost_then_index() {
        let scores = vec![
            PenaltyScore {
                expected_cost: 5.0,
                expected_penalty: 1.0,
            },
            PenaltyScore {
                expected_cost: 4.0,
                expected_penalty: 1.0,
            },
            PenaltyScore {
                expected_cost: 4.0,
                expected_penalty: 1.0,
            },
        ];
        assert_eq!(select_min_penalty(&scores), 1);
    }
}
