//! Prior distributions over selectivity (paper §3.3).
//!
//! Bayes's rule needs a prior `f(z)` over the unknown selectivity.  With no
//! workload knowledge, the paper adopts the **Jeffreys prior** — the
//! standard non-informative choice, `Beta(1/2, 1/2)` for a Bernoulli
//! process — and notes that the **uniform prior** `Beta(1, 1)` gives nearly
//! identical results (Figure 4).  Workload knowledge can be encoded as an
//! arbitrary Beta prior.

use rqo_math::BetaDistribution;

/// A conjugate (Beta) prior over selectivity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Prior {
    /// Jeffreys's non-informative prior, `Beta(1/2, 1/2)` — the paper's
    /// default.
    #[default]
    Jeffreys,
    /// The uniform prior, `Beta(1, 1)`: all selectivities equally likely.
    Uniform,
    /// A custom Beta prior encoding workload knowledge.
    Custom {
        /// First shape parameter (> 0).
        alpha: f64,
        /// Second shape parameter (> 0).
        beta: f64,
    },
}

impl Prior {
    /// A custom prior with the given pseudo-counts.
    ///
    /// # Panics
    ///
    /// Panics when either shape is non-positive or non-finite.
    pub fn custom(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && beta > 0.0 && alpha.is_finite() && beta.is_finite(),
            "invalid prior shapes ({alpha}, {beta})"
        );
        Prior::Custom { alpha, beta }
    }

    /// Fits a workload-informed prior from historically observed
    /// selectivities by Beta moment matching (the paper's §3.3: "If we
    /// have some prior knowledge about the query workload, we may be able
    /// to use that knowledge to estimate f(z)").
    ///
    /// The fitted prior's weight is capped at `max_weight`
    /// pseudo-observations so that stale workload knowledge can never
    /// overwhelm fresh sample evidence; pass `f64::INFINITY` to disable
    /// the cap.  Falls back to Jeffreys when fewer than two observations
    /// are given or when the history is degenerate (zero variance, or all
    /// mass on the boundary).
    pub fn fit_from_history(selectivities: &[f64], max_weight: f64) -> Self {
        assert!(max_weight > 0.0, "max_weight must be positive");
        if selectivities.len() < 2 {
            return Prior::Jeffreys;
        }
        assert!(
            selectivities.iter().all(|&s| (0.0..=1.0).contains(&s)),
            "selectivities must lie in [0, 1]"
        );
        let n = selectivities.len() as f64;
        let mean: f64 = selectivities.iter().sum::<f64>() / n;
        let var: f64 = selectivities
            .iter()
            .map(|&s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        if var <= 1e-12 || mean <= 0.0 || mean >= 1.0 {
            return Prior::Jeffreys;
        }
        // Moment matching: mean = a/(a+b), var = ab/((a+b)^2 (a+b+1)).
        let weight = (mean * (1.0 - mean) / var - 1.0).max(0.0);
        if weight <= 0.0 {
            return Prior::Jeffreys;
        }
        let weight = weight.min(max_weight);
        let (alpha, beta) = (mean * weight, (1.0 - mean) * weight);
        if alpha <= 0.0 || beta <= 0.0 {
            return Prior::Jeffreys;
        }
        Prior::Custom { alpha, beta }
    }

    /// The Beta shape parameters `(α₀, β₀)`.
    pub fn shape(&self) -> (f64, f64) {
        match self {
            Prior::Jeffreys => (0.5, 0.5),
            Prior::Uniform => (1.0, 1.0),
            Prior::Custom { alpha, beta } => (*alpha, *beta),
        }
    }

    /// The prior as a distribution (before observing any sample).
    pub fn distribution(&self) -> BetaDistribution {
        let (a, b) = self.shape();
        BetaDistribution::new(a, b)
    }

    /// The prior's "pseudo-sample size" `α₀ + β₀` — how many observations
    /// the prior is worth.  Non-informative priors are worth ≤ 2 tuples,
    /// which is why the choice barely matters at realistic sample sizes
    /// (the paper's Figure 4).
    pub fn weight(&self) -> f64 {
        let (a, b) = self.shape();
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(Prior::Jeffreys.shape(), (0.5, 0.5));
        assert_eq!(Prior::Uniform.shape(), (1.0, 1.0));
        assert_eq!(Prior::custom(2.0, 8.0).shape(), (2.0, 8.0));
        assert_eq!(Prior::default(), Prior::Jeffreys);
    }

    #[test]
    fn weights() {
        assert_eq!(Prior::Jeffreys.weight(), 1.0);
        assert_eq!(Prior::Uniform.weight(), 2.0);
        assert_eq!(Prior::custom(3.0, 7.0).weight(), 10.0);
    }

    #[test]
    fn distribution_moments() {
        let d = Prior::custom(2.0, 8.0).distribution();
        assert!((d.mean() - 0.2).abs() < 1e-12);
        let u = Prior::Uniform.distribution();
        assert!((u.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid prior shapes")]
    fn rejects_bad_custom() {
        Prior::custom(-1.0, 1.0);
    }

    #[test]
    fn fit_recovers_workload_shape() {
        // History concentrated around 10%: the fitted prior's mean must be
        // ~0.1 and its weight substantial.
        let history = [0.08, 0.09, 0.10, 0.11, 0.12, 0.10, 0.095, 0.105];
        let prior = Prior::fit_from_history(&history, f64::INFINITY);
        let d = prior.distribution();
        assert!((d.mean() - 0.1).abs() < 0.005, "mean {}", d.mean());
        assert!(prior.weight() > 50.0, "weight {}", prior.weight());
    }

    #[test]
    fn fit_weight_is_capped() {
        let history = [0.0999, 0.1, 0.1001, 0.1, 0.0999, 0.1001];
        let prior = Prior::fit_from_history(&history, 20.0);
        assert!(prior.weight() <= 20.0 + 1e-9, "weight {}", prior.weight());
        let d = prior.distribution();
        assert!((d.mean() - 0.1).abs() < 0.01);
    }

    #[test]
    fn fit_degenerate_histories_fall_back_to_jeffreys() {
        assert_eq!(Prior::fit_from_history(&[], 100.0), Prior::Jeffreys);
        assert_eq!(Prior::fit_from_history(&[0.5], 100.0), Prior::Jeffreys);
        // Zero variance.
        assert_eq!(
            Prior::fit_from_history(&[0.2, 0.2, 0.2], 100.0),
            Prior::Jeffreys
        );
        // All mass on a boundary.
        assert_eq!(
            Prior::fit_from_history(&[0.0, 0.0, 0.0], 100.0),
            Prior::Jeffreys
        );
        // Variance too large for any Beta (mean 0.5, var 0.25 ⇒ weight 0).
        assert_eq!(
            Prior::fit_from_history(&[0.0, 1.0, 0.0, 1.0], 100.0),
            Prior::Jeffreys
        );
    }

    #[test]
    fn fitted_prior_sharpens_posterior_for_matching_workload() {
        use crate::posterior::SelectivityPosterior;
        let history = [0.09, 0.10, 0.11, 0.10, 0.095, 0.105, 0.1, 0.102];
        let fitted = Prior::fit_from_history(&history, 200.0);
        // A small sample consistent with the workload: the fitted prior
        // yields a tighter posterior than Jeffreys.
        let with_fit = SelectivityPosterior::from_observation(2, 20, fitted);
        let with_jeffreys = SelectivityPosterior::from_observation(2, 20, Prior::Jeffreys);
        assert!(with_fit.std_dev() < with_jeffreys.std_dev());
    }

    #[test]
    #[should_panic(expected = "selectivities must lie in [0, 1]")]
    fn fit_rejects_out_of_range() {
        Prior::fit_from_history(&[0.5, 1.5], 100.0);
    }
}
