//! The confidence threshold — the paper's single robustness knob (§3.1).
//!
//! A threshold of `T` means: rank query plans by the `T`-percentile of
//! their execution-cost distribution, i.e. assign each plan the cost the
//! optimizer is `T`-percent confident will not be exceeded.  `T = 50%`
//! ranks by median cost; higher `T` weights the right-hand tail (the
//! "realistic worst case") and therefore favours plans whose cost is flat
//! in selectivity.

use crate::posterior::SelectivityPosterior;

/// A confidence threshold in the open interval `(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ConfidenceThreshold(f64);

impl ConfidenceThreshold {
    /// Creates a threshold.
    ///
    /// # Panics
    ///
    /// Panics when `t` is not strictly inside `(0, 1)` — the endpoints
    /// would demand certainty no finite sample provides.
    pub fn new(t: f64) -> Self {
        assert!(
            t > 0.0 && t < 1.0 && t.is_finite(),
            "confidence threshold {t} outside (0, 1)"
        );
        Self(t)
    }

    /// Creates a threshold from a percentage (e.g. `80.0` for 80%).
    pub fn from_percent(pct: f64) -> Self {
        Self::new(pct / 100.0)
    }

    /// The threshold as a probability in `(0, 1)`.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// The threshold as a percentage.
    pub fn percent(&self) -> f64 {
        self.0 * 100.0
    }
}

impl Default for ConfidenceThreshold {
    /// The paper's recommended general-purpose baseline, `T = 80%`
    /// (§6.2.5: "good performance and good predictability").
    fn default() -> Self {
        RobustnessLevel::Moderate.threshold()
    }
}

impl std::fmt::Display for ConfidenceThreshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T={}%", self.percent())
    }
}

/// The paper's proposed administrator-facing presets (§6.2.5): a system
/// configuration parameter set to conservative / moderate / aggressive,
/// overridable per query with a hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RobustnessLevel {
    /// `T = 95%`: very stable plans, few surprises; for workloads where
    /// predictability is paramount.
    Conservative,
    /// `T = 80%`: the recommended general-purpose baseline.
    Moderate,
    /// `T = 50%`: median-cost ranking; speculative thresholds below 50%
    /// are "of limited applicability" per the paper.
    Aggressive,
}

impl RobustnessLevel {
    /// The threshold this preset denotes.
    pub fn threshold(&self) -> ConfidenceThreshold {
        match self {
            RobustnessLevel::Conservative => ConfidenceThreshold::new(0.95),
            RobustnessLevel::Moderate => ConfidenceThreshold::new(0.80),
            RobustnessLevel::Aggressive => ConfidenceThreshold::new(0.50),
        }
    }
}

/// Computes the `T`-percentile of a plan's execution-*cost* distribution
/// by the paper's §3.1.1 shortcut: because cost is monotone non-decreasing
/// in selectivity, the cost percentile equals the cost function applied to
/// the selectivity percentile — one quantile inversion plus one ordinary
/// cost-model call, with no distribution plumbed through the optimizer.
///
/// `cost_fn` is the plan's cost as a function of selectivity (the cost
/// model's `g(s)`).
pub fn cost_at_threshold(
    posterior: &SelectivityPosterior,
    t: ConfidenceThreshold,
    cost_fn: impl Fn(f64) -> f64,
) -> f64 {
    cost_fn(posterior.at_threshold(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::Prior;

    #[test]
    fn construction_and_accessors() {
        let t = ConfidenceThreshold::new(0.8);
        assert_eq!(t.value(), 0.8);
        assert_eq!(t.percent(), 80.0);
        assert_eq!(ConfidenceThreshold::from_percent(95.0).value(), 0.95);
        assert_eq!(t.to_string(), "T=80%");
        assert_eq!(ConfidenceThreshold::default().value(), 0.80);
    }

    #[test]
    fn presets_match_paper() {
        assert_eq!(RobustnessLevel::Conservative.threshold().percent(), 95.0);
        assert_eq!(RobustnessLevel::Moderate.threshold().percent(), 80.0);
        assert_eq!(RobustnessLevel::Aggressive.threshold().percent(), 50.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn rejects_zero() {
        ConfidenceThreshold::new(0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn rejects_one() {
        ConfidenceThreshold::new(1.0);
    }

    #[test]
    fn shortcut_equals_direct_cost_percentile() {
        // Verify §3.1.1: percentile-of-cost == cost-of-percentile for a
        // monotone cost function, by computing the cost percentile the
        // "roundabout" way (inverting the cost CDF numerically).
        let posterior = SelectivityPosterior::from_observation(50, 200, Prior::Jeffreys);
        let cost_fn = |s: f64| 5.0 + 120.0 * s; // linear, increasing
        for pct in [0.2, 0.5, 0.8, 0.95] {
            let t = ConfidenceThreshold::new(pct);
            let shortcut = cost_at_threshold(&posterior, t, cost_fn);
            // Direct: find cost c with Pr[cost <= c] = Pr[s <= g^{-1}(c)] = pct
            // by bisection over c.
            let (mut lo, mut hi) = (5.0f64, 125.0f64);
            for _ in 0..100 {
                let mid = 0.5 * (lo + hi);
                let s = (mid - 5.0) / 120.0;
                if posterior.cdf(s) < pct {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let direct = 0.5 * (lo + hi);
            assert!(
                (shortcut - direct).abs() < 1e-6,
                "pct {pct}: shortcut {shortcut} vs direct {direct}"
            );
        }
    }

    #[test]
    fn higher_threshold_higher_cost() {
        let posterior = SelectivityPosterior::from_observation(5, 500, Prior::Jeffreys);
        let cost_fn = |s: f64| 1.0 + 1000.0 * s;
        let c50 = cost_at_threshold(&posterior, ConfidenceThreshold::new(0.5), cost_fn);
        let c95 = cost_at_threshold(&posterior, ConfidenceThreshold::new(0.95), cost_fn);
        assert!(c95 > c50);
    }
}
