//! Service-level runtime types: cancellation/deadline tokens and the
//! query-service configuration.
//!
//! These live in `rqo-core` (rather than in the service crate itself)
//! because the *executor* has to see them: cooperative cancellation only
//! works if the morsel loops deep inside `rqo-exec` can poll the token a
//! running query was admitted with.  Keeping the token type in the
//! estimation/core crate — which the executor already sits below in the
//! dependency order via `rqo-service` — would create a cycle, so the
//! token is defined here, in the one crate both the executor and the
//! service can depend on.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Why a query stopped before producing its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The client (or an operator) called [`QueryToken::cancel`].
    Cancelled,
    /// The token's deadline passed while the query was queued or running.
    DeadlineExceeded,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Cancelled => f.write_str("cancelled"),
            StopReason::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    /// The reason the token first fired; later fires never overwrite it,
    /// so a deadline-exceeded query stays deadline-exceeded even after an
    /// explicit cancel.
    fired: OnceLock<StopReason>,
    /// Set at most once (construction or service admission applying a
    /// default); checked on every poll.
    deadline: OnceLock<Instant>,
    /// Deterministic test hook: when set, every [`QueryToken::poll`]
    /// decrements the counter and the token cancels itself when it
    /// reaches zero — "cancel at the k-th morsel/node boundary" without
    /// any timing dependence.
    polls_before_cancel: Option<AtomicI64>,
}

/// A shared cancellation/deadline token, polled cooperatively by the
/// executor at every operator entry and every morsel boundary.
///
/// Clones share state: cancelling any clone stops the query everywhere
/// the token is polled.  A fired token is **sticky** — once
/// [`poll`](Self::poll) has returned a [`StopReason`], it returns one
/// forever.
#[derive(Debug, Clone, Default)]
pub struct QueryToken {
    inner: Arc<TokenInner>,
}

impl QueryToken {
    /// A token that never fires unless [`cancel`](Self::cancel) is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that fires with [`StopReason::DeadlineExceeded`] once
    /// `deadline` (measured from now) has elapsed.
    pub fn with_deadline(deadline: Duration) -> Self {
        let token = Self::new();
        let _ = token.inner.deadline.set(Instant::now() + deadline);
        token
    }

    /// Deterministic test hook: a token that cancels itself on the
    /// `polls`-th call to [`poll`](Self::poll) (0 fires immediately).
    /// Polls happen at operator entries and morsel boundaries, so this
    /// pins "cancel at the k-th checkpoint" without sleeping.
    pub fn cancel_after_polls(polls: u64) -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                fired: OnceLock::new(),
                deadline: OnceLock::new(),
                polls_before_cancel: Some(AtomicI64::new(polls.min(i64::MAX as u64) as i64)),
            }),
        }
    }

    /// Requests cancellation.  Idempotent; takes effect at the query's
    /// next poll (at most one morsel of work later).
    pub fn cancel(&self) {
        self.fire(StopReason::Cancelled);
    }

    /// Fires the token with `reason` (first fire wins).
    fn fire(&self, reason: StopReason) {
        let _ = self.inner.fired.set(reason);
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Applies a deadline if none was set at construction (used by the
    /// service to apply a configured default).  Returns whether the
    /// deadline was applied.
    pub fn set_default_deadline(&self, deadline: Duration) -> bool {
        self.inner.deadline.set(Instant::now() + deadline).is_ok()
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline.get().copied()
    }

    /// True when [`cancel`](Self::cancel) has been called (does not check
    /// the deadline and does not consume a test-hook poll).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Polls the token: returns `Some(reason)` when the query must stop.
    /// The reason of the *first* fire is sticky across all later polls.
    pub fn poll(&self) -> Option<StopReason> {
        if let Some(countdown) = &self.inner.polls_before_cancel {
            if countdown.fetch_sub(1, Ordering::SeqCst) <= 0 {
                self.fire(StopReason::Cancelled);
            }
        }
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return self.stop_reason();
        }
        if let Some(deadline) = self.inner.deadline.get() {
            if Instant::now() >= *deadline {
                // Sticky: a passed deadline never un-passes.
                self.fire(StopReason::DeadlineExceeded);
                return self.stop_reason();
            }
        }
        None
    }

    /// The reason the token fired, if it has (does not consume a
    /// poll-countdown tick and does not check the deadline).
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.inner.fired.get().copied()
    }

    /// True when `self` and `other` share the same underlying state
    /// (identity, not value, comparison — used by `ExecOptions` equality).
    pub fn same_token(&self, other: &QueryToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Configuration of the multi-session query service: worker pool sizing,
/// admission control, and the default deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Dedicated pool worker threads.  `0` is valid: submitting threads
    /// always participate in their own query's morsels, so the service
    /// still makes progress — dedicated workers only add parallelism.
    pub workers: usize,
    /// Maximum queries executing concurrently; arrivals beyond this wait
    /// in the admission queue.
    pub max_concurrent: usize,
    /// Maximum queries waiting for a slot; arrivals beyond this are
    /// rejected immediately.
    pub queue_capacity: usize,
    /// How long a queued query waits for a slot before being rejected.
    pub queue_timeout: Duration,
    /// Deadline applied to queries whose handle does not carry one
    /// (`None` = no default deadline).
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_concurrent: 4,
            queue_capacity: 16,
            queue_timeout: Duration::from_secs(5),
            default_deadline: None,
        }
    }
}

impl ServiceConfig {
    /// Admission control effectively disabled: every arrival is admitted
    /// immediately (the configuration the service bench uses as its
    /// uncontrolled baseline).
    pub fn unlimited() -> Self {
        Self {
            max_concurrent: usize::MAX / 2,
            queue_capacity: 0,
            ..Self::default()
        }
    }

    /// Overrides the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the concurrent-query limit.
    pub fn with_max_concurrent(mut self, max_concurrent: usize) -> Self {
        self.max_concurrent = max_concurrent;
        self
    }

    /// Overrides the wait-queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Overrides the queue timeout.
    pub fn with_queue_timeout(mut self, queue_timeout: Duration) -> Self {
        self.queue_timeout = queue_timeout;
        self
    }

    /// Sets the default per-query deadline.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_never_fires() {
        let t = QueryToken::new();
        for _ in 0..100 {
            assert_eq!(t.poll(), None);
        }
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_is_sticky_and_shared_across_clones() {
        let t = QueryToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.poll(), Some(StopReason::Cancelled));
        assert_eq!(t.poll(), Some(StopReason::Cancelled));
        assert!(t.same_token(&clone));
        assert!(!t.same_token(&QueryToken::new()));
    }

    #[test]
    fn elapsed_deadline_fires_and_sticks() {
        let t = QueryToken::with_deadline(Duration::ZERO);
        assert_eq!(t.poll(), Some(StopReason::DeadlineExceeded));
        assert_eq!(t.stop_reason(), Some(StopReason::DeadlineExceeded));
        // The first fire's reason is sticky, even after an explicit cancel.
        t.cancel();
        assert_eq!(t.poll(), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn default_deadline_applies_only_once() {
        let t = QueryToken::new();
        assert!(t.set_default_deadline(Duration::from_secs(3600)));
        assert!(!t.set_default_deadline(Duration::ZERO));
        assert_eq!(t.poll(), None, "the losing zero deadline must not fire");

        let explicit = QueryToken::with_deadline(Duration::ZERO);
        assert!(!explicit.set_default_deadline(Duration::from_secs(3600)));
        assert_eq!(explicit.poll(), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn cancel_after_polls_counts_exactly() {
        let t = QueryToken::cancel_after_polls(3);
        assert_eq!(t.poll(), None);
        assert_eq!(t.poll(), None);
        assert_eq!(t.poll(), None);
        assert_eq!(t.poll(), Some(StopReason::Cancelled));
        assert_eq!(
            QueryToken::cancel_after_polls(0).poll(),
            Some(StopReason::Cancelled)
        );
    }

    #[test]
    fn config_builders() {
        let cfg = ServiceConfig::default()
            .with_workers(7)
            .with_max_concurrent(3)
            .with_queue_capacity(9)
            .with_queue_timeout(Duration::from_millis(250))
            .with_default_deadline(Duration::from_secs(1));
        assert_eq!(cfg.workers, 7);
        assert_eq!(cfg.max_concurrent, 3);
        assert_eq!(cfg.queue_capacity, 9);
        assert_eq!(cfg.queue_timeout, Duration::from_millis(250));
        assert_eq!(cfg.default_deadline, Some(Duration::from_secs(1)));
        assert_eq!(ServiceConfig::unlimited().queue_capacity, 0);
    }
}
