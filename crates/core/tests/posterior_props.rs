//! Property tests pinning the Beta-posterior CDF inversion.
//!
//! The estimator's entire robustness story routes through one function:
//! [`SelectivityPosterior::at_threshold`], the posterior quantile at the
//! confidence threshold `T`.  These properties pin its contract:
//!
//! * **monotone in `T`** — a higher confidence threshold can never
//!   produce a smaller selectivity estimate (the basis of the paper's
//!   monotone plan-conservatism claim);
//! * **brackets the sample proportion** — for interior observations
//!   (`0 < k < n`) the 5% and 95% quantiles straddle `k/n`;
//! * **inverts the CDF** — `cdf(at_threshold(T)) == T`;
//! * **agrees with the binomial** — under the uniform prior the
//!   posterior CDF equals the classic binomial tail identity
//!   `P(Beta(k+1, n−k+1) ≤ p) = 1 − P(Bin(n+1, p) ≤ k)`, cross-checking
//!   `rqo-core`'s posterior against `rqo-math`'s independent binomial
//!   summation.

use proptest::prelude::*;
use rqo_core::{ConfidenceThreshold, Prior, SelectivityPosterior};
use rqo_math::Binomial;

fn posterior(k: usize, n: usize, uniform: bool) -> SelectivityPosterior {
    let prior = if uniform {
        Prior::Uniform
    } else {
        Prior::Jeffreys
    };
    SelectivityPosterior::from_observation(k, n, prior)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quantile_is_monotone_in_threshold(
        n in 1usize..400,
        k_seed in 0usize..10_000,
        t1 in 0.01f64..0.99,
        t2 in 0.01f64..0.99,
        uniform: bool,
    ) {
        let k = k_seed % (n + 1);
        let (lo_t, hi_t) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let post = posterior(k, n, uniform);
        let lo = post.at_threshold(ConfidenceThreshold::new(lo_t));
        let hi = post.at_threshold(ConfidenceThreshold::new(hi_t));
        prop_assert!(
            lo <= hi + 1e-12,
            "quantile not monotone: k={k} n={n} q({lo_t})={lo} > q({hi_t})={hi}"
        );
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn quantiles_bracket_the_sample_proportion(
        n in 2usize..500,
        k_seed in 0usize..10_000,
        uniform: bool,
    ) {
        // Interior observations only: 0 < k < n.
        let k = 1 + k_seed % (n - 1);
        let post = posterior(k, n, uniform);
        let p_hat = k as f64 / n as f64;
        let lo = post.at_threshold(ConfidenceThreshold::new(0.05));
        let hi = post.at_threshold(ConfidenceThreshold::new(0.95));
        prop_assert!(
            lo <= p_hat && p_hat <= hi,
            "k={k} n={n}: [q(5%)={lo}, q(95%)={hi}] misses k/n={p_hat}"
        );
    }

    #[test]
    fn quantile_inverts_the_cdf(
        n in 1usize..400,
        k_seed in 0usize..10_000,
        t in 0.01f64..0.99,
        uniform: bool,
    ) {
        let k = k_seed % (n + 1);
        let post = posterior(k, n, uniform);
        let q = post.at_threshold(ConfidenceThreshold::new(t));
        let round_trip = post.cdf(q);
        prop_assert!(
            (round_trip - t).abs() < 1e-6,
            "cdf(quantile({t})) = {round_trip} for k={k} n={n}"
        );
    }

    #[test]
    fn uniform_posterior_cdf_matches_binomial_tail(
        n in 1usize..200,
        k_seed in 0usize..10_000,
        p in 0.01f64..0.99,
    ) {
        let k = k_seed % (n + 1);
        // Uniform prior ⇒ posterior is Beta(k+1, n−k+1), whose CDF at p
        // is the probability that Bin(n+1, p) exceeds k — computed here
        // by rqo-math's direct pmf summation, a fully independent path.
        let direct = posterior(k, n, true).cdf(p);
        let via_binomial = 1.0 - Binomial::new((n + 1) as u64, p).cdf(k as u64);
        prop_assert!(
            (direct - via_binomial).abs() < 1e-8,
            "k={k} n={n} p={p}: beta cdf {direct} vs binomial tail {via_binomial}"
        );
    }
}
