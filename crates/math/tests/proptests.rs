//! Property-based tests of the numerical core: distribution invariants
//! that must hold for arbitrary shapes and observations.

use proptest::prelude::*;
use rqo_math::{
    percentile_sorted, regularized_incomplete_beta, BetaDistribution, Binomial, RunningStats,
    WeightedStats,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn beta_cdf_is_monotone_and_bounded(
        alpha in 0.1f64..200.0,
        beta in 0.1f64..200.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let d = BetaDistribution::new(alpha, beta);
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let c_lo = d.cdf(lo);
        let c_hi = d.cdf(hi);
        prop_assert!((0.0..=1.0).contains(&c_lo));
        prop_assert!((0.0..=1.0).contains(&c_hi));
        prop_assert!(c_lo <= c_hi + 1e-12);
    }

    #[test]
    fn beta_quantile_roundtrips_cdf(
        alpha in 0.2f64..500.0,
        beta in 0.2f64..500.0,
        q in 0.001f64..0.999,
    ) {
        let d = BetaDistribution::new(alpha, beta);
        let x = d.quantile(q);
        prop_assert!((0.0..=1.0).contains(&x));
        prop_assert!((d.cdf(x) - q).abs() < 1e-6, "cdf(quantile({q})) = {}", d.cdf(x));
    }

    #[test]
    fn beta_quantile_is_monotone(
        alpha in 0.2f64..100.0,
        beta in 0.2f64..100.0,
        q1 in 0.01f64..0.99,
        q2 in 0.01f64..0.99,
    ) {
        let d = BetaDistribution::new(alpha, beta);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(d.quantile(lo) <= d.quantile(hi) + 1e-12);
    }

    #[test]
    fn incomplete_beta_symmetry_holds(
        a in 0.2f64..300.0,
        b in 0.2f64..300.0,
        x in 0.0f64..1.0,
    ) {
        let lhs = regularized_incomplete_beta(a, b, x);
        let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "asymmetry: {lhs} vs {rhs}");
    }

    #[test]
    fn binomial_pmf_nonnegative_cdf_monotone(
        n in 1u64..2000,
        p in 0.0f64..1.0,
        k in 0u64..2000,
    ) {
        let b = Binomial::new(n, p);
        prop_assert!(b.pmf(k) >= 0.0);
        if k > 0 {
            prop_assert!(b.cdf(k - 1) <= b.cdf(k) + 1e-12);
        }
        prop_assert!(b.cdf(n) == 1.0);
    }

    #[test]
    fn binomial_support_mass_is_one(n in 1u64..3000, p in 0.0f64..1.0) {
        let b = Binomial::new(n, p);
        let mass: f64 = b.support_iter(0.0).map(|(_, w)| w).sum();
        prop_assert!((mass - 1.0).abs() < 1e-6, "mass = {mass}");
    }

    #[test]
    fn running_stats_merge_is_order_independent(
        data in prop::collection::vec(-1e6f64..1e6, 2..200),
        split in 1usize..199,
    ) {
        let split = split.min(data.len() - 1);
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        let mut ab = a;
        ab.merge(&b);
        prop_assert_eq!(ab.count(), whole.count());
        prop_assert!((ab.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((ab.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
    }

    #[test]
    fn weighted_stats_match_unweighted_for_unit_weights(
        data in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut w = WeightedStats::new();
        let mut r = RunningStats::new();
        for &x in &data {
            w.push(x, 1.0);
            r.push(x);
        }
        prop_assert!((w.mean() - r.mean()).abs() < 1e-9);
        prop_assert!((w.variance() - r.variance()).abs() < 1e-6);
    }

    #[test]
    fn percentile_is_monotone_and_within_range(
        mut data in prop::collection::vec(-1e3f64..1e3, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        data.sort_by(f64::total_cmp);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let v_lo = percentile_sorted(&data, lo);
        let v_hi = percentile_sorted(&data, hi);
        prop_assert!(v_lo <= v_hi + 1e-12);
        prop_assert!(v_lo >= data[0] - 1e-12);
        prop_assert!(v_hi <= data[data.len() - 1] + 1e-12);
    }

    #[test]
    fn beta_sampling_stays_in_support(alpha in 0.2f64..50.0, beta in 0.2f64..50.0, seed: u64) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = BetaDistribution::new(alpha, beta);
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }
}
