//! Differential validation of the penalty quadrature.
//!
//! The expected-penalty plan scorer stands on `beta_expected_value`, so
//! a silent quadrature bug becomes a silent planner bug.  These
//! property tests cross-check it against two independent oracles over
//! randomly drawn posteriors and cost curves:
//!
//! 1. **Closed form.**  A regret curve of two linear cost candidates is
//!    the hinge `max(0, α + βs)`, whose Beta expectation has an exact
//!    expression through the regularized incomplete beta function.  The
//!    quadrature must match it to better than 1e-6.
//! 2. **Seeded Monte Carlo.**  For arbitrary piecewise-linear curves,
//!    a deterministic sampling estimate must agree within its own
//!    statistical error bars.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rqo_math::{beta_expected_value, regularized_incomplete_beta, BetaDistribution};

/// Exact `E[max(0, α + βS)]` for `S ~ Beta(a, b)` via partial
/// expectations: with `F` the Beta CDF,
/// `E[S · 1{S > k}] = mean · (1 − F_{a+1,b}(k))`.
fn hinge_expectation_closed_form(a: f64, b: f64, alpha: f64, beta: f64) -> f64 {
    let dist = BetaDistribution::new(a, b);
    let mean = dist.mean();
    if beta == 0.0 {
        return alpha.max(0.0);
    }
    // α + βs crosses zero at k.
    let k = -alpha / beta;
    let tail_mass = |k: f64, a: f64, b: f64| {
        if k <= 0.0 {
            1.0
        } else if k >= 1.0 {
            0.0
        } else {
            1.0 - regularized_incomplete_beta(a, b, k)
        }
    };
    if beta > 0.0 {
        // Positive part is {S > k}.
        alpha * tail_mass(k, a, b) + beta * mean * tail_mass(k, a + 1.0, b)
    } else {
        // Positive part is {S < k}.
        alpha * (1.0 - tail_mass(k, a, b)) + beta * mean * (1.0 - tail_mass(k, a + 1.0, b))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quadrature vs. closed form, pinned below 1e-6 absolute error.
    #[test]
    fn quadrature_matches_closed_form_hinge_regret(
        a in 0.6f64..40.0,
        b in 0.6f64..40.0,
        alpha in -5.0f64..5.0,
        beta in -20.0f64..20.0,
    ) {
        let dist = BetaDistribution::new(a, b);
        let quad = beta_expected_value(&dist, |s| (alpha + beta * s).max(0.0), 1e-9);
        let exact = hinge_expectation_closed_form(a, b, alpha, beta);
        prop_assert!(
            (quad - exact).abs() < 1e-6,
            "Beta({a},{b}), hinge {alpha}+{beta}s: quadrature {quad} vs closed form {exact}"
        );
    }

    /// Quadrature vs. a seeded Monte-Carlo oracle on piecewise-linear
    /// cost curves (the scorer's worst case: a kink at an arbitrary
    /// crossover selectivity).
    #[test]
    fn quadrature_matches_seeded_monte_carlo(
        a in 0.6f64..40.0,
        b in 0.6f64..40.0,
        base in 0.0f64..10.0,
        slope_lo in 0.0f64..50.0,
        slope_hi in 0.0f64..50.0,
        crossover in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        // Continuous piecewise-linear curve with a kink at `crossover`.
        let f = move |s: f64| {
            if s < crossover {
                base + slope_lo * s
            } else {
                base + slope_lo * crossover + slope_hi * (s - crossover)
            }
        };
        let dist = BetaDistribution::new(a, b);
        let quad = beta_expected_value(&dist, f, 1e-9);

        const SAMPLES: usize = 200_000;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..SAMPLES {
            let v = f(dist.sample(&mut rng));
            sum += v;
            sum_sq += v * v;
        }
        let mc = sum / SAMPLES as f64;
        let variance = (sum_sq / SAMPLES as f64 - mc * mc).max(0.0);
        // 6-sigma band plus an absolute floor for near-zero variance.
        let tolerance = 6.0 * (variance / SAMPLES as f64).sqrt() + 1e-6;
        prop_assert!(
            (quad - mc).abs() < tolerance,
            "Beta({a},{b}): quadrature {quad} vs MC {mc} (tolerance {tolerance})"
        );
    }
}
