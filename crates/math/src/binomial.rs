//! The binomial distribution.
//!
//! The paper's analytical model (§5.1) needs the distribution of the number
//! of sample tuples that satisfy a predicate: with `n` tuples sampled with
//! replacement from a population of selectivity `p`, the count of satisfying
//! tuples is `Binomial(n, p)`.  Figures 5–8 are computed by summing plan
//! costs weighted by these probabilities.

use crate::special::{ln_choose, regularized_incomplete_beta};

/// A binomial distribution with `n` trials and success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates `Binomial(n, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "Binomial: p={p} outside [0,1]");
        Self { n, p }
    }

    /// The number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The per-trial success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// The variance `np(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Probability mass function `Pr[X = k]`, computed in log space for
    /// numerical stability at large `n`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        // Degenerate endpoints avoid 0 * ln 0.
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let ln_pmf = ln_choose(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln();
        ln_pmf.exp()
    }

    /// Cumulative distribution function `Pr[X ≤ k]`.
    ///
    /// Evaluated via the incomplete-beta identity
    /// `Pr[X ≤ k] = I_{1−p}(n − k, k + 1)`, which is `O(1)` rather than a
    /// sum over `k` terms.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0; // k < n here
        }
        regularized_incomplete_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
    }

    /// Iterates over `(k, pmf(k))` pairs covering essentially all of the
    /// probability mass (skips leading/trailing mass below `cutoff`).
    ///
    /// This powers the analytical figures: expected execution time is
    /// `Σ_k pmf(k) · cost(plan chosen at k)`.  For `n = 6000` summing all
    /// terms is still cheap, but trimming keeps larger sweeps fast.
    pub fn support_iter(&self, cutoff: f64) -> impl Iterator<Item = (u64, f64)> + '_ {
        // Conservative window: mean ± max(10σ, 40) trials, clamped to [0, n].
        let sigma = self.variance().sqrt();
        let half_width = (10.0 * sigma).max(40.0);
        let lo = (self.mean() - half_width).floor().max(0.0) as u64;
        let hi = ((self.mean() + half_width).ceil() as u64).min(self.n);
        (lo..=hi).filter_map(move |k| {
            let w = self.pmf(k);
            (w >= cutoff).then_some((k, w))
        })
    }

    /// Draws one sample by inversion for small `n`, normal-rejection
    /// (BTPE-lite via direct Bernoulli summation fallback) otherwise.
    ///
    /// Exact Bernoulli summation is used below 64 trials; beyond that the
    /// sample is produced by counting successes in blocks, which stays exact
    /// (not approximate) but is `O(n)` — fine for the sample sizes used here
    /// (≤ tens of thousands).
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut count = 0u64;
        for _ in 0..self.n {
            if rng.gen::<f64>() < self.p {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn pmf_small_cases() {
        let b = Binomial::new(4, 0.5);
        let expected = [1.0, 4.0, 6.0, 4.0, 1.0].map(|c| c / 16.0);
        for (k, e) in expected.iter().enumerate() {
            assert!(close(b.pmf(k as u64), *e, 1e-14));
        }
        assert_eq!(b.pmf(5), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (100, 0.001), (1000, 0.5), (6000, 0.0014)] {
            let b = Binomial::new(n, p);
            let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
            assert!(close(total, 1.0, 1e-10), "sum for ({n},{p}) = {total}");
        }
    }

    #[test]
    fn degenerate_probabilities() {
        let zero = Binomial::new(10, 0.0);
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(1), 0.0);
        assert_eq!(zero.cdf(0), 1.0);
        let one = Binomial::new(10, 1.0);
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.pmf(9), 0.0);
        assert_eq!(one.cdf(9), 0.0);
        assert_eq!(one.cdf(10), 1.0);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let b = Binomial::new(50, 0.12);
        let mut acc = 0.0;
        for k in 0..50 {
            acc += b.pmf(k);
            assert!(close(b.cdf(k), acc, 1e-12), "k={k}");
        }
        assert_eq!(b.cdf(50), 1.0);
        assert_eq!(b.cdf(60), 1.0);
    }

    #[test]
    fn support_iter_captures_mass() {
        let b = Binomial::new(1000, 0.0014);
        let total: f64 = b.support_iter(0.0).map(|(_, w)| w).sum();
        assert!(close(total, 1.0, 1e-9), "mass = {total}");
        // With a cutoff, the mass lost is bounded by cutoff * window size.
        let trimmed: f64 = b.support_iter(1e-9).map(|(_, w)| w).sum();
        assert!(trimmed > 0.999_999);
    }

    #[test]
    fn moments() {
        let b = Binomial::new(200, 0.25);
        assert!(close(b.mean(), 50.0, 1e-12));
        assert!(close(b.variance(), 37.5, 1e-12));
    }

    #[test]
    fn sampling_matches_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = Binomial::new(500, 0.1);
        let reps = 2000;
        let sum: u64 = (0..reps).map(|_| b.sample(&mut rng)).sum();
        let mean = sum as f64 / reps as f64;
        assert!(close(mean, 50.0, 1.0), "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_p() {
        Binomial::new(10, 1.2);
    }
}
