//! The Beta distribution.
//!
//! `Beta(α, β)` is the conjugate posterior for a Bernoulli/binomial sampling
//! process, which is exactly the situation in sampling-based selectivity
//! estimation: each sampled tuple independently satisfies the predicate with
//! probability `p` (the unknown selectivity).  Observing `k` successes out of
//! `n` trials under a `Beta(a₀, b₀)` prior gives the posterior
//! `Beta(a₀ + k, b₀ + n − k)`; the Jeffreys prior is `Beta(1/2, 1/2)` and the
//! uniform prior is `Beta(1, 1)` (paper §3.3).

use crate::special::{ln_beta, regularized_incomplete_beta};
use crate::QUANTILE_TOLERANCE;

/// A Beta distribution with shape parameters `alpha > 0` and `beta > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaDistribution {
    alpha: f64,
    beta: f64,
    /// Cached `ln B(alpha, beta)` — the pdf normalizer.
    ln_norm: f64,
}

impl BetaDistribution {
    /// Creates a `Beta(alpha, beta)` distribution.
    ///
    /// # Panics
    ///
    /// Panics if either shape parameter is non-positive or non-finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && beta > 0.0 && alpha.is_finite() && beta.is_finite(),
            "BetaDistribution: invalid shapes ({alpha}, {beta})"
        );
        Self {
            alpha,
            beta,
            ln_norm: ln_beta(alpha, beta),
        }
    }

    /// The first shape parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The second shape parameter `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The mean `α / (α + β)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// The variance `αβ / ((α+β)² (α+β+1))`.
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The mode, when it exists (`α > 1` and `β > 1`); boundary modes for the
    /// degenerate cases.
    pub fn mode(&self) -> f64 {
        if self.alpha > 1.0 && self.beta > 1.0 {
            (self.alpha - 1.0) / (self.alpha + self.beta - 2.0)
        } else if self.alpha <= 1.0 && self.beta > 1.0 {
            0.0
        } else if self.alpha > 1.0 && self.beta <= 1.0 {
            1.0
        } else {
            // Bimodal at both endpoints (α, β ≤ 1); return the mean as a
            // representative central value.
            self.mean()
        }
    }

    /// Probability density function at `x ∈ [0, 1]`.
    ///
    /// Returns `0.0` outside the support, and handles the boundary spikes of
    /// shapes below 1 by returning `f64::INFINITY` at the singular endpoint.
    pub fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        self.ln_pdf(x).exp()
    }

    /// Natural logarithm of the pdf at `x`.
    ///
    /// Returns `-inf` outside the support or at zero-density endpoints.
    pub fn ln_pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return f64::NEG_INFINITY;
        }
        // Handle endpoints explicitly to avoid 0 * ln(0) = NaN.
        if x == 0.0 {
            return match self.alpha.partial_cmp(&1.0).expect("finite") {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => -self.ln_norm,
                std::cmp::Ordering::Greater => f64::NEG_INFINITY,
            };
        }
        if x == 1.0 {
            return match self.beta.partial_cmp(&1.0).expect("finite") {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => -self.ln_norm,
                std::cmp::Ordering::Greater => f64::NEG_INFINITY,
            };
        }
        (self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln() - self.ln_norm
    }

    /// Cumulative distribution function `Pr[X ≤ x] = I_x(α, β)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if x >= 1.0 {
            return 1.0;
        }
        regularized_incomplete_beta(self.alpha, self.beta, x)
    }

    /// Quantile function (inverse CDF): the smallest `x` with
    /// `cdf(x) ≥ q`.
    ///
    /// This is the heart of the confidence-threshold mechanism: the robust
    /// selectivity estimate at threshold `T` is `quantile(T)` of the
    /// posterior.  Implemented as Newton's method on the CDF (whose
    /// derivative is the pdf) safeguarded by bisection, starting from a
    /// normal approximation to the Beta.
    ///
    /// # Panics
    ///
    /// Panics if `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile: q={q} outside [0,1]");
        if q == 0.0 {
            return 0.0;
        }
        if q == 1.0 {
            return 1.0;
        }

        // Initial guess: moment-matched normal approximation, clamped to the
        // open interval.
        let mut x =
            (self.mean() + self.std_dev() * normal_quantile_approx(q)).clamp(1e-12, 1.0 - 1e-12);

        // Bisection bracket, tightened as Newton progresses.
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        for _ in 0..200 {
            let f = self.cdf(x) - q;
            if f > 0.0 {
                hi = x;
            } else {
                lo = x;
            }
            if f.abs() < QUANTILE_TOLERANCE || (hi - lo) < QUANTILE_TOLERANCE {
                break;
            }
            let d = self.pdf(x);
            let newton = if d > 0.0 && d.is_finite() {
                x - f / d
            } else {
                f64::NAN
            };
            x = if newton.is_finite() && newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
        }
        x
    }

    /// Draws one sample using Jöhnk / Cheng-style gamma ratio:
    /// `X = G₁ / (G₁ + G₂)` with `G₁ ~ Gamma(α, 1)`, `G₂ ~ Gamma(β, 1)`.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let g1 = sample_gamma(self.alpha, rng);
        let g2 = sample_gamma(self.beta, rng);
        if g1 + g2 == 0.0 {
            // Numerically possible only for tiny shapes; fall back to mean.
            return self.mean();
        }
        g1 / (g1 + g2)
    }
}

/// Marsaglia–Tsang gamma sampler (shape `a`, scale 1); boosts shapes < 1.
fn sample_gamma<R: rand::Rng + ?Sized>(a: f64, rng: &mut R) -> f64 {
    if a < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return sample_gamma(a + 1.0, rng) * u.powf(1.0 / a);
    }
    let d = a - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller (avoids a rand_distr dependency).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = 1.0 + c * z;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Acklam-style rational approximation to the standard normal quantile.
///
/// Only used to seed Newton's method, so ~1e-9 accuracy is more than enough.
fn normal_quantile_approx(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn moments_match_closed_forms() {
        let d = BetaDistribution::new(2.0, 6.0);
        assert!(close(d.mean(), 0.25, 1e-15));
        assert!(close(d.variance(), 2.0 * 6.0 / (64.0 * 9.0), 1e-15));
        assert!(close(d.mode(), 1.0 / 6.0, 1e-15));
    }

    #[test]
    fn mode_edge_cases() {
        assert_eq!(BetaDistribution::new(0.5, 2.0).mode(), 0.0);
        assert_eq!(BetaDistribution::new(2.0, 0.5).mode(), 1.0);
        assert!(close(BetaDistribution::new(0.5, 0.5).mode(), 0.5, 1e-15));
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Simple trapezoid integration for a few representative shapes.
        for &(a, b) in &[(2.0, 5.0), (10.5, 89.5), (1.0, 1.0), (3.0, 3.0)] {
            let d = BetaDistribution::new(a, b);
            let n = 20_000;
            let mut total = 0.0;
            for i in 0..n {
                let x0 = i as f64 / n as f64;
                let x1 = (i + 1) as f64 / n as f64;
                total += 0.5 * (d.pdf(x0) + d.pdf(x1)) / n as f64;
            }
            assert!(close(total, 1.0, 1e-3), "integral for ({a},{b}) = {total}");
        }
    }

    #[test]
    fn pdf_endpoint_behaviour() {
        let spike = BetaDistribution::new(0.5, 0.5);
        assert_eq!(spike.pdf(0.0), f64::INFINITY);
        assert_eq!(spike.pdf(1.0), f64::INFINITY);
        let smooth = BetaDistribution::new(2.0, 3.0);
        assert_eq!(smooth.pdf(0.0), 0.0);
        assert_eq!(smooth.pdf(1.0), 0.0);
        assert_eq!(smooth.pdf(-0.1), 0.0);
        assert_eq!(smooth.pdf(1.1), 0.0);
        let uniform = BetaDistribution::new(1.0, 1.0);
        assert!(close(uniform.pdf(0.0), 1.0, 1e-12));
        assert!(close(uniform.pdf(1.0), 1.0, 1e-12));
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let d = BetaDistribution::new(10.5, 89.5);
        let mut prev = 0.0;
        for i in 0..=1000 {
            let x = i as f64 / 1000.0;
            let c = d.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-14, "CDF decreased at x={x}");
            prev = c;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &(a, b) in &[
            (0.5, 0.5),
            (1.0, 1.0),
            (10.5, 89.5),
            (50.5, 450.5),
            (500.0, 2.0),
        ] {
            let d = BetaDistribution::new(a, b);
            for i in 1..20 {
                let q = i as f64 / 20.0;
                let x = d.quantile(q);
                assert!(
                    close(d.cdf(x), q, 1e-9),
                    "roundtrip failed ({a},{b}) q={q}: x={x} cdf={}",
                    d.cdf(x)
                );
            }
        }
    }

    #[test]
    fn quantile_endpoints() {
        let d = BetaDistribution::new(3.0, 4.0);
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(1.0), 1.0);
    }

    #[test]
    fn median_of_symmetric_beta_is_half() {
        for &a in &[0.5, 1.0, 5.0, 250.5] {
            let d = BetaDistribution::new(a, a);
            assert!(close(d.quantile(0.5), 0.5, 1e-9));
        }
    }

    #[test]
    fn paper_section_3_4_example() {
        // "Suppose that 10 tuples from a 100-tuple sample satisfy the query
        // predicate" — posterior is Beta(10.5, 90.5); the paper reports
        // selectivity estimates of 7.8%, 10.1%, and 12.8% at confidence
        // thresholds 20%, 50%, and 80%.
        let d = BetaDistribution::new(10.5, 90.5);
        assert!(
            close(d.quantile(0.20), 0.078, 0.002),
            "{}",
            d.quantile(0.20)
        );
        assert!(
            close(d.quantile(0.50), 0.101, 0.002),
            "{}",
            d.quantile(0.50)
        );
        assert!(
            close(d.quantile(0.80), 0.128, 0.002),
            "{}",
            d.quantile(0.80)
        );
    }

    #[test]
    fn sampling_matches_moments() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for &(a, b) in &[(0.5, 0.5), (2.0, 8.0), (20.0, 5.0)] {
            let d = BetaDistribution::new(a, b);
            let n = 50_000;
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let x = d.sample(&mut rng);
                assert!((0.0..=1.0).contains(&x));
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / n as f64;
            let var = sum_sq / n as f64 - mean * mean;
            assert!(close(mean, d.mean(), 0.01), "mean ({a},{b}): {mean}");
            assert!(close(var, d.variance(), 0.005), "var ({a},{b}): {var}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid shapes")]
    fn rejects_bad_shapes() {
        BetaDistribution::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_bad_probability() {
        BetaDistribution::new(1.0, 1.0).quantile(1.5);
    }
}
