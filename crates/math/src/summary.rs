//! Streaming and weighted summary statistics.
//!
//! The paper evaluates estimation techniques not by relative error but by
//! the *mean and variance of query execution time* across a workload
//! (§5.2): predictability is the standard deviation, performance is the
//! mean.  These accumulators compute exactly those quantities, both for
//! measured executions (unweighted, Welford) and for the analytical model
//! (weighted by binomial probabilities).

/// Numerically stable running mean/variance accumulator (Welford's
/// algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`; 0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (divides by `n − 1`).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Weighted mean/variance accumulator for probability-weighted mixtures.
///
/// Used by the analytical figures: the execution time of a query with true
/// selectivity `p` is a mixture over the binomially distributed sample count
/// `k`, each outcome carrying weight `pmf(k)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightedStats {
    weight: f64,
    mean: f64,
    m2: f64,
}

impl WeightedStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation `x` with non-negative weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or non-finite.
    pub fn push(&mut self, x: f64, w: f64) {
        assert!(w >= 0.0 && w.is_finite(), "WeightedStats: bad weight {w}");
        if w == 0.0 {
            return;
        }
        self.weight += w;
        let delta = x - self.mean;
        self.mean += delta * w / self.weight;
        self.m2 += w * delta * (x - self.mean);
    }

    /// Total accumulated weight.
    pub fn total_weight(&self) -> f64 {
        self.weight
    }

    /// Weighted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Weighted (population) variance.
    pub fn variance(&self) -> f64 {
        if self.weight == 0.0 {
            0.0
        } else {
            self.m2 / self.weight
        }
    }

    /// Weighted standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &WeightedStats) {
        if other.weight == 0.0 {
            return;
        }
        if self.weight == 0.0 {
            *self = *other;
            return;
        }
        let total = self.weight + other.weight;
        let delta = other.mean - self.mean;
        self.mean += delta * other.weight / total;
        self.m2 += other.m2 + delta * delta * self.weight * other.weight / total;
        self.weight = total;
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of an ascending-sorted slice using
/// linear interpolation between adjacent order statistics.
///
/// # Panics
///
/// Panics if the slice is empty, unsorted data is the caller's bug (checked
/// only in debug builds), or `q ∉ [0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "percentile: q={q} outside [0,1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted: input not sorted"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!(close(s.mean(), 5.0, 1e-12));
        assert!(close(s.variance(), 4.0, 1e-12));
        assert!(close(s.std_dev(), 2.0, 1e-12));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!(close(s.sample_variance(), 32.0 / 7.0, 1e-12));
    }

    #[test]
    fn running_stats_empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = RunningStats::new();
        s1.push(42.0);
        assert_eq!(s1.mean(), 42.0);
        assert_eq!(s1.variance(), 0.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..33] {
            a.push(x);
        }
        for &x in &data[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!(close(a.mean(), whole.mean(), 1e-12));
        assert!(close(a.variance(), whole.variance(), 1e-10));
    }

    #[test]
    fn weighted_stats_matches_direct() {
        // Mixture: 30 with weight .2, 50 with weight .8
        let mut w = WeightedStats::new();
        w.push(30.0, 0.2);
        w.push(50.0, 0.8);
        assert!(close(w.mean(), 46.0, 1e-12));
        let var = 0.2 * (30.0f64 - 46.0).powi(2) + 0.8 * (50.0f64 - 46.0).powi(2);
        assert!(close(w.variance(), var, 1e-12));
    }

    #[test]
    fn weighted_stats_zero_weight_is_noop() {
        let mut w = WeightedStats::new();
        w.push(123.0, 0.0);
        assert_eq!(w.total_weight(), 0.0);
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn weighted_stats_merge() {
        let mut a = WeightedStats::new();
        a.push(1.0, 0.5);
        a.push(3.0, 0.25);
        let mut b = WeightedStats::new();
        b.push(10.0, 0.25);
        let mut merged = a;
        merged.merge(&b);
        let mut direct = WeightedStats::new();
        direct.push(1.0, 0.5);
        direct.push(3.0, 0.25);
        direct.push(10.0, 0.25);
        assert!(close(merged.mean(), direct.mean(), 1e-12));
        assert!(close(merged.variance(), direct.variance(), 1e-12));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 1.0), 4.0);
        assert!(close(percentile_sorted(&v, 0.5), 2.5, 1e-12));
        assert!(close(percentile_sorted(&v, 1.0 / 3.0), 2.0, 1e-12));
        assert_eq!(percentile_sorted(&[7.0], 0.9), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile_sorted(&[], 0.5);
    }
}
