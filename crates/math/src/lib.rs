//! Special functions and probability distributions underpinning robust
//! cardinality estimation.
//!
//! The robust estimator of Babcock & Chaudhuri (SIGMOD 2005) models the
//! unknown selectivity of a predicate as a Beta-distributed random variable:
//! observing that `k` of `n` sampled tuples satisfy the predicate yields the
//! posterior `Beta(k + 1/2, n - k + 1/2)` under the Jeffreys prior.  Turning
//! that posterior into a single selectivity requires evaluating and
//! *inverting* the Beta cumulative distribution function, which in turn
//! requires the regularized incomplete beta function and the log-gamma
//! function.  This crate implements all of that from first principles, plus
//! the binomial distribution used by the paper's analytical model (§5) and
//! small numerical utilities shared across the workspace.
//!
//! Everything here is deterministic, allocation-free on the hot paths, and
//! validated against published reference values in the unit tests.

#![warn(missing_docs)]
// Published Lanczos/Acklam coefficients are kept verbatim even where they
// exceed f64 precision, so they can be checked against the literature.
#![allow(clippy::excessive_precision)]

pub mod beta;
pub mod binomial;
pub mod quadrature;
pub mod special;
pub mod summary;

pub use beta::BetaDistribution;
pub use binomial::Binomial;
pub use quadrature::{
    adaptive_simpson, beta_expected_value, gauss_legendre_unit, quantile_nodes,
    DEFAULT_EXPECTED_VALUE_TOL, DEFAULT_QUADRATURE_NODES, DEGENERATE_STD_DEV,
};
pub use special::{ln_beta, ln_gamma, regularized_incomplete_beta};
pub use summary::{percentile_sorted, RunningStats, WeightedStats};

/// Absolute tolerance used by the quantile (inverse-CDF) solvers.
///
/// Selectivities live in `[0, 1]`; a 1e-12 tolerance is far below anything
/// observable through a cost model, while still being cheap to reach with
/// Newton iterations safeguarded by bisection.
pub const QUANTILE_TOLERANCE: f64 = 1e-12;
