//! Numerical integration for expected-penalty plan scoring.
//!
//! Two complementary rules:
//!
//! * **Gauss–Legendre** nodes/weights on `(0, 1)` — the workhorse for
//!   integrating a plan's cost curve over a selectivity posterior.  The
//!   integral is taken in the *quantile domain*: for a posterior with
//!   quantile function `Q`, `E[f(S)] = ∫₀¹ f(Q(u)) du`, so the nodes
//!   never touch the endpoints and the rule is exact for polynomials in
//!   `u` of degree `2n − 1`.
//! * **Adaptive Simpson** — an interval-subdividing fallback used by the
//!   differential tests as an independent oracle (and available to
//!   callers whose integrand is not smooth enough for a fixed rule).
//!
//! Both are deterministic: same inputs, bit-identical outputs, no global
//! state — a requirement inherited from the optimizer's thread-invariance
//! contract.

use crate::beta::BetaDistribution;

/// Default size of the shared [`quantile_nodes`] grid the penalty
/// scorer prices candidate plans on.  32 substituted nodes put the
/// quadrature error of smooth cost curves far below anything a plan
/// comparison can see.
pub const DEFAULT_QUADRATURE_NODES: usize = 32;

/// Default absolute tolerance for [`beta_expected_value`], matching the
/// 1e-6 accuracy contract of the regret tests with headroom.
pub const DEFAULT_EXPECTED_VALUE_TOL: f64 = 1e-9;

/// Posteriors whose standard deviation is below this are treated as
/// point masses: [`beta_expected_value`] short-circuits to `f(mean)`
/// instead of integrating over a numerical spike (where the quantile
/// inversion becomes ill-conditioned after heavy feedback drives alpha
/// or beta huge).
pub const DEGENERATE_STD_DEV: f64 = 1e-6;

/// Gauss–Legendre nodes and weights on the open interval `(0, 1)`,
/// returned as `(node, weight)` pairs in increasing node order.  Weights
/// sum to 1.  Panics if `n == 0`.
///
/// Nodes are the roots of the degree-`n` Legendre polynomial (found by
/// Newton iteration from the Chebyshev initial guess), mapped affinely
/// from `(-1, 1)`.
pub fn gauss_legendre_unit(n: usize) -> Vec<(f64, f64)> {
    assert!(n > 0, "quadrature needs at least one node");
    let mut out = vec![(0.0, 0.0); n];
    // Roots come in ± pairs on (-1, 1); solve the upper half.
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev-based initial guess for the i-th root (descending).
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            // Evaluate P_n(x) and P_n'(x) by the three-term recurrence.
            let mut p0 = 1.0;
            let mut p1 = 0.0;
            for j in 0..n {
                let p2 = p1;
                p1 = p0;
                p0 = ((2.0 * j as f64 + 1.0) * x * p1 - j as f64 * p2) / (j as f64 + 1.0);
            }
            dp = n as f64 * (x * p0 - p1) / (x * x - 1.0);
            let dx = p0 / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        // Map (-1, 1) → (0, 1): node (1 ± x)/2, weight w/2.
        out[i] = ((1.0 - x) / 2.0, w / 2.0);
        out[n - 1 - i] = ((1.0 + x) / 2.0, w / 2.0);
    }
    out
}

/// Quadrature nodes over the *quantile* domain `(0, 1)`, as `(quantile,
/// weight)` pairs with weights summing to 1.
///
/// These are Gauss–Legendre nodes pushed through the substitution
/// `u = (1 − cos πt)/2`, which clusters them quadratically at both
/// endpoints.  That matters because integrating `f(Q(u))` du (the
/// quantile-domain form of `E[f(S)]`) meets the quantile function's
/// derivative `1/pdf(Q(u))`, which blows up at the endpoints whenever
/// the density vanishes there; without the substitution Gauss–Legendre
/// degrades to slow algebraic convergence.
///
/// The penalty scorer evaluates *every candidate plan at the same
/// shared nodes*, so the (small, kink-induced) residual quadrature
/// error cancels in cross-candidate comparisons.
pub fn quantile_nodes(n: usize) -> Vec<(f64, f64)> {
    gauss_legendre_unit(n)
        .iter()
        .map(|&(t, w)| {
            let angle = std::f64::consts::PI * t;
            let u = (1.0 - angle.cos()) / 2.0;
            (u, w * (std::f64::consts::PI / 2.0) * angle.sin())
        })
        .collect()
}

/// `E[f(S)]` for `S ~ dist`, to absolute tolerance `tol`, by adaptive
/// Simpson in the (endpoint-substituted) quantile domain.
///
/// Unlike the fixed-node [`quantile_nodes`] grid, the adaptive rule
/// keeps its accuracy on integrands with kinks — exactly what a regret
/// curve `costᵢ(s) − minⱼ costⱼ(s)` looks like at plan-crossover
/// selectivities — so this is the reference evaluator the differential
/// tests pin below 1e-6.
///
/// Near-degenerate posteriors (std dev below [`DEGENERATE_STD_DEV`])
/// short-circuit to `f(mean)` — integrating over a spike wastes work and
/// amplifies quantile-inversion noise without changing the answer.
pub fn beta_expected_value(dist: &BetaDistribution, f: impl Fn(f64) -> f64, tol: f64) -> f64 {
    if dist.std_dev() < DEGENERATE_STD_DEV {
        return f(dist.mean());
    }
    // E = ∫₀¹ f(Q(u)) du = ∫₀¹ f(Q(u(t))) · (π/2)·sin(πt) dt with
    // u(t) = (1 − cos πt)/2.  The sin factor zeroes the endpoint
    // evaluations, so Q is only ever inverted strictly inside (0, 1).
    let g = |t: f64| {
        let angle = std::f64::consts::PI * t;
        let u = (1.0 - angle.cos()) / 2.0;
        if u <= 0.0 || u >= 1.0 {
            return 0.0;
        }
        (std::f64::consts::PI / 2.0) * angle.sin() * f(dist.quantile(u))
    };
    adaptive_simpson(g, 0.0, 1.0, tol, 40)
}

/// Adaptive Simpson integration of `f` on `[a, b]` to absolute tolerance
/// `tol`, subdividing at most `max_depth` levels deep.
///
/// Deterministic and endpoint-evaluating; use it as an independent
/// cross-check of the Gauss–Legendre path or for integrands with kinks.
pub fn adaptive_simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64, max_depth: u32) -> f64 {
    fn simpson(fa: f64, fm: f64, fb: f64, h: f64) -> f64 {
        h / 6.0 * (fa + 4.0 * fm + fb)
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        f: &impl Fn(f64) -> f64,
        a: f64,
        b: f64,
        fa: f64,
        fm: f64,
        fb: f64,
        whole: f64,
        tol: f64,
        depth: u32,
    ) -> f64 {
        let m = (a + b) / 2.0;
        let lm = (a + m) / 2.0;
        let rm = (m + b) / 2.0;
        let flm = f(lm);
        let frm = f(rm);
        let left = simpson(fa, flm, fm, m - a);
        let right = simpson(fm, frm, fb, b - m);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            // Richardson extrapolation on the two half-interval estimates.
            return left + right + delta / 15.0;
        }
        recurse(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
            + recurse(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
    }
    if a == b {
        return 0.0;
    }
    // Start from a composite grid rather than one panel: a feature much
    // narrower than the interval (a hinge active only in a far tail,
    // say) would otherwise be invisible to the first coarse probe and
    // the recursion would terminate at 0 without ever seeing it.
    const PANELS: usize = 64;
    let h = (b - a) / PANELS as f64;
    let panel_tol = tol / PANELS as f64;
    let mut total = 0.0;
    for i in 0..PANELS {
        let lo = a + i as f64 * h;
        let hi = if i == PANELS - 1 { b } else { lo + h };
        let flo = f(lo);
        let m = (lo + hi) / 2.0;
        let fm = f(m);
        let fhi = f(hi);
        let whole = simpson(flo, fm, fhi, hi - lo);
        total += recurse(&f, lo, hi, flo, fm, fhi, whole, panel_tol, max_depth);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one_and_nodes_are_interior() {
        for n in [1, 2, 3, 5, 8, 16, 32, 64] {
            let gl = gauss_legendre_unit(n);
            assert_eq!(gl.len(), n);
            let total: f64 = gl.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-14, "n={n}: weights sum {total}");
            for &(u, w) in &gl {
                assert!(u > 0.0 && u < 1.0, "n={n}: node {u} not interior");
                assert!(w > 0.0, "n={n}: weight {w} not positive");
            }
            // Strictly increasing node order.
            for pair in gl.windows(2) {
                assert!(pair[0].0 < pair[1].0);
            }
        }
    }

    #[test]
    fn gauss_legendre_is_exact_for_polynomials() {
        // n nodes integrate x^k exactly for k ≤ 2n−1; ∫₀¹ x^k = 1/(k+1).
        let gl = gauss_legendre_unit(8);
        for k in 0..=15u32 {
            let got: f64 = gl.iter().map(|&(u, w)| w * u.powi(k as i32)).sum();
            let want = 1.0 / (k as f64 + 1.0);
            assert!((got - want).abs() < 1e-13, "x^{k}: {got} vs {want}");
        }
    }

    #[test]
    fn adaptive_simpson_matches_known_integrals() {
        let got = adaptive_simpson(|x| x.sin(), 0.0, std::f64::consts::PI, 1e-10, 30);
        assert!((got - 2.0).abs() < 1e-9);
        let got = adaptive_simpson(|x| (-x).exp(), 0.0, 1.0, 1e-10, 30);
        assert!((got - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        assert_eq!(adaptive_simpson(|x| x, 3.0, 3.0, 1e-10, 30), 0.0);
    }

    #[test]
    fn quantile_nodes_are_interior_and_weights_sum_to_one() {
        for n in [8, 16, 32] {
            let nodes = quantile_nodes(n);
            let total: f64 = nodes.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n}: weights sum {total}");
            for &(u, w) in &nodes {
                assert!(u > 0.0 && u < 1.0, "n={n}: node {u} not interior");
                assert!(w > 0.0);
            }
        }
    }

    #[test]
    fn beta_expected_value_of_identity_is_the_mean() {
        for (a, b) in [(2.0, 5.0), (0.5, 0.5), (10.0, 1.0), (37.0, 101.0)] {
            let dist = BetaDistribution::new(a, b);
            let got = beta_expected_value(&dist, |s| s, DEFAULT_EXPECTED_VALUE_TOL);
            assert!(
                (got - dist.mean()).abs() < 1e-7,
                "Beta({a},{b}): E[S] {got} vs mean {}",
                dist.mean()
            );
        }
    }

    #[test]
    fn beta_expected_value_matches_simpson_in_s_domain() {
        // Independent oracle: ∫ f(s)·pdf(s) ds over (0,1) by adaptive
        // Simpson (clipping the endpoints where the pdf may blow up).
        // The kink in f at s = 0.3 is the shape every regret curve has
        // at a plan-crossover selectivity.
        let dist = BetaDistribution::new(3.0, 7.0);
        let f = |s: f64| 1.0 + 4.0 * s + (10.0 * s).min(3.0);
        let got = beta_expected_value(&dist, f, DEFAULT_EXPECTED_VALUE_TOL);
        let simpson = adaptive_simpson(|s| f(s) * dist.pdf(s), 1e-9, 1.0 - 1e-9, 1e-12, 40);
        assert!(
            (got - simpson).abs() < 1e-6,
            "quantile-domain {got} vs s-domain {simpson}"
        );
    }

    #[test]
    fn fixed_node_grid_agrees_with_adaptive_on_smooth_curves() {
        // The scorer's shared grid must track the reference evaluator
        // closely when the cost curve is smooth.
        let dist = BetaDistribution::new(4.0, 9.0);
        let f = |s: f64| 2.0 + 30.0 * s + 5.0 * s * s;
        let fixed: f64 = quantile_nodes(DEFAULT_QUADRATURE_NODES)
            .iter()
            .map(|&(u, w)| w * f(dist.quantile(u)))
            .sum();
        let adaptive = beta_expected_value(&dist, f, DEFAULT_EXPECTED_VALUE_TOL);
        assert!(
            (fixed - adaptive).abs() < 5e-6,
            "fixed {fixed} vs adaptive {adaptive}"
        );
    }

    #[test]
    fn degenerate_posterior_short_circuits_to_point_estimate() {
        // Huge alpha+beta ⇒ std dev ~ 1e-7 ⇒ point-mass treatment.
        let dist = BetaDistribution::new(2.0e12, 6.0e12);
        assert!(dist.std_dev() < DEGENERATE_STD_DEV);
        let calls = std::cell::Cell::new(0usize);
        let got = beta_expected_value(
            &dist,
            |s| {
                calls.set(calls.get() + 1);
                100.0 * s
            },
            DEFAULT_EXPECTED_VALUE_TOL,
        );
        assert_eq!(
            calls.get(),
            1,
            "spike posterior must evaluate f exactly once"
        );
        assert!((got - 100.0 * dist.mean()).abs() < 1e-9);
    }
}
