//! Special functions: log-gamma, log-beta, and the regularized incomplete
//! beta function.
//!
//! These are the numerical workhorses behind the Beta posterior used for
//! selectivity inference.  The implementations follow the classic recipes
//! (Lanczos approximation for `ln Γ`, the Lentz continued-fraction evaluation
//! for `I_x(a, b)`) and are accurate to roughly 1e-14 relative error over the
//! parameter ranges that arise in practice (`a, b ≤ ~10^5`, i.e. sample sizes
//! up to hundreds of thousands of tuples).

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's values).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
///
/// Panics if `x` is not finite or `x <= 0` and `x` is an exact non-positive
/// integer (where `Γ` has poles).  Other non-positive inputs are handled via
/// the reflection formula.
///
/// # Examples
///
/// ```
/// use rqo_math::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-14);            // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma: non-finite input {x}");
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1−x) = π / sin(πx)
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        assert!(
            sin_pi_x != 0.0,
            "ln_gamma: pole at non-positive integer {x}"
        );
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFS[0];
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the complete beta function,
/// `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a + b)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `b <= 0`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "ln_beta: parameters must be positive, got ({a}, {b})"
    );
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// The regularized incomplete beta function `I_x(a, b)`.
///
/// `I_x(a, b) = B(x; a, b) / B(a, b)` is the CDF of the `Beta(a, b)`
/// distribution evaluated at `x`.  Evaluated with the modified Lentz
/// continued-fraction algorithm; the symmetry
/// `I_x(a, b) = 1 − I_{1−x}(b, a)` is used to stay in the rapidly-converging
/// regime `x < (a + 1) / (a + b + 2)`.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use rqo_math::regularized_incomplete_beta;
/// // Beta(1,1) is uniform: I_x(1,1) = x.
/// assert!((regularized_incomplete_beta(1.0, 1.0, 0.3) - 0.3).abs() < 1e-14);
/// ```
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "incomplete beta: non-positive shape ({a}, {b})"
    );
    assert!(
        (0.0..=1.0).contains(&x),
        "incomplete beta: x={x} outside [0,1]"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a B(a,b)), computed in log space to avoid
    // overflow for large shape parameters.
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() / a) * beta_cont_frac(a, b, x)
    } else {
        1.0 - (ln_front.exp() / b) * beta_cont_frac(b, a, 1.0 - x)
    }
}

/// Continued-fraction part of the incomplete beta function (Numerical
/// Recipes `betacf`), evaluated with the modified Lentz method.
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-16;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return h;
        }
    }
    // Convergence is extremely fast in the regime we restrict to; reaching
    // here indicates pathological parameters.  Return the best estimate.
    h
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Exact to floating-point rounding via log-gamma.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose: k={k} > n={n}");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..=20u32 {
            assert!(
                close(ln_gamma(n as f64), fact.ln(), 1e-13),
                "ln_gamma({n}) = {} vs {}",
                ln_gamma(n as f64),
                fact.ln()
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-14));
        // Γ(3/2) = sqrt(π)/2
        assert!(close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2,
            1e-13
        ));
        // Γ(7/2) = 15 sqrt(π) / 8
        assert!(close(
            ln_gamma(3.5),
            (15.0 / 8.0f64).ln() + 0.5 * std::f64::consts::PI.ln(),
            1e-13
        ));
    }

    #[test]
    fn ln_gamma_large_argument_stirling() {
        // Compare against Stirling series with correction terms for x = 1000.
        let x = 1000.0f64;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
                - 1.0 / (360.0 * x.powi(3));
        assert!(close(ln_gamma(x), stirling, 1e-12));
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn ln_gamma_pole_panics() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_beta_symmetry_and_values() {
        assert!(close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-13));
        assert!(close(ln_beta(0.5, 0.5), std::f64::consts::PI.ln(), 1e-13));
        for &(a, b) in &[(1.5, 7.0), (10.0, 0.25), (100.0, 200.0)] {
            assert!(close(ln_beta(a, b), ln_beta(b, a), 1e-14));
        }
    }

    #[test]
    fn incomplete_beta_uniform_is_identity() {
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            assert!(close(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-13));
        }
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(regularized_incomplete_beta(3.2, 4.7, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(3.2, 4.7, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        for &(a, b, x) in &[
            (2.0, 5.0, 0.3),
            (0.5, 0.5, 0.1),
            (10.5, 89.5, 0.12),
            (500.0, 500.0, 0.5),
        ] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert!(close(lhs, rhs, 1e-12), "symmetry failed for ({a},{b},{x})");
        }
    }

    #[test]
    fn incomplete_beta_known_values() {
        // I_x(2, 2) = 3x^2 - 2x^3.
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let expect = 3.0 * x * x - 2.0 * x * x * x;
            assert!(close(
                regularized_incomplete_beta(2.0, 2.0, x),
                expect,
                1e-13
            ));
        }
        // I_x(1, b) = 1 - (1-x)^b.
        for &x in &[0.05, 0.3, 0.8] {
            let expect = 1.0 - (1.0f64 - x).powf(7.5);
            assert!(close(
                regularized_incomplete_beta(1.0, 7.5, x),
                expect,
                1e-12
            ));
        }
        // I_x(a, 1) = x^a.
        for &x in &[0.05f64, 0.3, 0.8] {
            let expect = x.powf(3.25);
            assert!(close(
                regularized_incomplete_beta(3.25, 1.0, x),
                expect,
                1e-12
            ));
        }
    }

    #[test]
    fn incomplete_beta_median_of_symmetric_is_half() {
        for &a in &[0.5, 1.0, 2.0, 17.5, 400.0] {
            assert!(close(regularized_incomplete_beta(a, a, 0.5), 0.5, 1e-12));
        }
    }

    #[test]
    fn incomplete_beta_large_shapes() {
        // Beta(5000.5, 5000.5) is tightly concentrated around 0.5; check the
        // CDF transitions from ~0 to ~1 across the mean.
        let lo = regularized_incomplete_beta(5000.5, 5000.5, 0.47);
        let hi = regularized_incomplete_beta(5000.5, 5000.5, 0.53);
        assert!(lo < 1e-6, "lo = {lo}");
        assert!(hi > 1.0 - 1e-6, "hi = {hi}");
    }

    #[test]
    fn ln_choose_small_values() {
        assert!(close(ln_choose(5, 2), 10f64.ln(), 1e-13));
        assert!(close(ln_choose(10, 5), 252f64.ln(), 1e-13));
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
        // Pascal identity spot-check in log space.
        let lhs = ln_choose(20, 7).exp();
        let rhs = ln_choose(19, 6).exp() + ln_choose(19, 7).exp();
        assert!(close(lhs, rhs, 1e-12));
    }
}
