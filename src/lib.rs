//! **robust-qo** — a reproduction of Babcock & Chaudhuri, *"Towards a
//! Robust Query Optimizer: A Principled and Practical Approach"*
//! (SIGMOD 2005), as a complete Rust system.
//!
//! The paper's idea in one paragraph: a query optimizer's cardinality
//! estimates are *uncertain*, and pretending otherwise is what makes
//! optimizers fragile.  Estimate the full probability distribution of
//! each predicate's selectivity (a Beta posterior inferred from a
//! precomputed random sample — a *join synopsis* for foreign-key joins),
//! then collapse it at a user-chosen **confidence threshold** `T`: the
//! optimizer prices every plan at a selectivity it is `T`-percent sure
//! will not be exceeded.  Low `T` optimizes for the typical case (fast
//! but occasionally terrible); high `T` optimizes for the realistic worst
//! case (predictable).  Because operator cost is monotone in cardinality,
//! this requires changing *only* the cardinality estimation module of a
//! conventional optimizer.
//!
//! # Workspace map
//!
//! | crate | contents |
//! |---|---|
//! | [`math`] | Beta/binomial distributions, special functions |
//! | [`storage`] | columnar tables, indexes, catalog, simulated I/O cost model |
//! | [`expr`] | predicate language evaluated on rows and samples |
//! | [`datagen`] | TPC-H-like + star-schema generators with correlation knobs |
//! | [`stats`] | samplers, join synopses, equi-depth histograms, distinct estimation |
//! | [`estimator`] | **the paper's contribution**: posteriors, thresholds, robust estimator |
//! | [`exec`] | physical operators charging the cost model |
//! | [`optimizer`] | access paths, DP join enumeration, star semijoins |
//! | [`service`] | concurrent query service: shared worker pool, admission control |
//!
//! # Quickstart
//!
//! ```
//! use robust_qo::prelude::*;
//!
//! // Generate a small TPC-H-like database and register statistics.
//! let data = TpchData::generate(&TpchConfig { scale_factor: 0.002, seed: 1 });
//! let db = RobustDb::new(data.into_catalog())
//!     .with_robustness(RobustnessLevel::Moderate);
//!
//! // The paper's Experiment-1 query: two correlated date predicates.
//! let query = Query::over(&["lineitem"])
//!     .filter("lineitem", exp1_lineitem_predicate(30))
//!     .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
//!
//! let outcome = db.run(&query);
//! println!("plan:\n{}", outcome.plan.explain());
//! println!("revenue = {}, simulated time = {:.3}s",
//!          outcome.rows[0][0], outcome.simulated_seconds);
//! ```
//!
//! # Serving many clients
//!
//! [`RobustDb`] is the single-tenant handle.  To serve concurrent
//! clients — one shared worker pool, admission control, per-query
//! deadlines and cancellation — convert it into a service:
//!
//! ```
//! use std::time::Duration;
//! use robust_qo::prelude::*;
//!
//! let data = TpchData::generate(&TpchConfig { scale_factor: 0.002, seed: 1 });
//! let service = RobustDb::new(data.into_catalog())
//!     .into_service(ServiceConfig::default().with_max_concurrent(4));
//! let session = service.session();
//!
//! let query = Query::over(&["lineitem"])
//!     .filter("lineitem", exp1_lineitem_predicate(30))
//!     .aggregate(AggExpr::count_star("n"));
//! let outcome = session.run(&query).expect("no deadline, no cancellation");
//! assert_eq!(outcome.rows.len(), 1);
//!
//! // A handle makes the query cancellable / deadline-bounded.
//! let handle = QueryHandle::with_deadline(Duration::from_secs(30));
//! let _ = session.run_with(&query, &handle);
//! println!("{}", service.stats());
//! ```

#![warn(missing_docs)]

pub use rqo_core as estimator;
pub use rqo_datagen as datagen;
pub use rqo_exec as exec;
pub use rqo_expr as expr;
pub use rqo_math as math;
pub use rqo_optimizer as optimizer;
pub use rqo_service as service;
pub use rqo_stats as stats;
pub use rqo_storage as storage;

pub use rqo_service::{
    AdaptiveOutcome, AnalyzedOutcome, ClientError, Engine, ErrorCode, InsertSummary, NetClient,
    NetServer, NetServerConfig, NetStats, ProtoError, QueryHandle, QueryOutcome, QueryReply,
    QueryService, ReplanEvent, Request, Response, RunMode, ServiceError, ServiceStats, Session,
};

/// One-stop imports for applications and the examples.
pub mod prelude {
    pub use crate::{
        AdaptiveOutcome, AnalyzedOutcome, ClientError, Engine, ErrorCode, InsertSummary, NetClient,
        NetServer, NetServerConfig, NetStats, ProtoError, QueryHandle, QueryOutcome, QueryReply,
        QueryService, ReplanEvent, Request, Response, RobustDb, RunMode, ServiceError,
        ServiceStats, Session,
    };
    pub use rqo_core::{
        AdaptivePolicy, CardinalityEstimator, ConfidenceThreshold,
        DistributionalHistogramEstimator, EstimateSource, EstimationRequest, EstimatorConfig,
        FeedbackStore, HistogramEstimator, MagicPolicy, OnTheFlyEstimator, PlanSelection, Prior,
        QueryToken, RobustEstimator, RobustnessLevel, SelectivityPosterior, ServiceConfig,
        StopReason,
    };
    pub use rqo_datagen::workload::{
        exp1_lineitem_predicate, exp2_part_predicate, exp3_dim_predicate, true_selectivity,
    };
    pub use rqo_datagen::{StarConfig, StarData, TpchConfig, TpchData};
    pub use rqo_exec::{AggExpr, ExecOptions, OpMetrics, PhysicalPlan};
    pub use rqo_expr::Expr;
    pub use rqo_optimizer::{CacheStats, PlanCache, PlanFingerprint};
    pub use rqo_optimizer::{Optimizer, PlannedQuery, Query};
    pub use rqo_stats::{DistinctSketch, RowReservoir, SynopsisRepository, TableSketches};
    pub use rqo_storage::{
        parse_date, Catalog, CostParams, DataType, Schema, StorageError, Table, TableBuilder, Value,
    };
}

use rqo_core::{
    AdaptivePolicy, ConfidenceThreshold, FeedbackStore, PlanSelection, RobustnessLevel,
    ServiceConfig,
};
use rqo_exec::ExecOptions;
use rqo_optimizer::{CacheStats, Optimizer, PlanCache, PlanFingerprint, PlannedQuery, Query};
use rqo_storage::{Catalog, CostParams, StorageError, Value};
use std::sync::Arc;

/// A batteries-included single-tenant database handle: catalog +
/// precomputed join synopses + a robust optimizer, behind one
/// `run(query)` call.
///
/// `RobustDb` is a thin wrapper over [`Engine`] — the same core the
/// concurrent [`QueryService`] shares across sessions.  Use
/// [`into_service`](Self::into_service) to turn this handle into a
/// multi-client service with admission control and per-query
/// deadlines/cancellation; the individual crates expose every layer for
/// finer control (custom estimators, cost parameters, multiple
/// samples, ...).
pub struct RobustDb {
    engine: Engine,
}

impl RobustDb {
    /// Builds the database over a catalog, precomputing 500-tuple join
    /// synopses (the paper's recommended size) for every table.
    pub fn new(catalog: Catalog) -> Self {
        Self {
            engine: Engine::new(catalog),
        }
    }

    /// Full-control constructor: cost parameters, synopsis sample size,
    /// and sampling seed.
    pub fn with_options(
        catalog: Catalog,
        params: CostParams,
        sample_size: usize,
        seed: u64,
    ) -> Self {
        Self {
            engine: Engine::with_options(catalog, params, sample_size, seed),
        }
    }

    /// Sets the adaptive re-optimization policy used by
    /// [`run_adaptive`](Self::run_adaptive): guard bound, threshold
    /// escalation schedule, and re-plan budget.
    /// [`AdaptivePolicy::disabled`] makes `run_adaptive` identical to
    /// [`run`](Self::run).
    pub fn with_adaptive_policy(mut self, policy: AdaptivePolicy) -> Self {
        self.engine.set_adaptive_policy(policy);
        self
    }

    /// The active adaptive re-optimization policy.
    pub fn adaptive_policy(&self) -> &AdaptivePolicy {
        self.engine.adaptive_policy()
    }

    /// Sets the executor's parallelism knobs (worker threads, morsel
    /// size).  Results and simulated costs are identical for every
    /// setting — only wall-clock time changes.
    pub fn with_exec_options(mut self, exec_options: ExecOptions) -> Self {
        self.engine.set_exec_options(exec_options);
        self
    }

    /// Sets the system-wide robustness preset (§6.2.5): conservative,
    /// moderate, or aggressive.  Individual queries may still override it
    /// with [`Query::with_hint`](rqo_optimizer::Query::with_hint).
    pub fn with_robustness(mut self, level: RobustnessLevel) -> Self {
        self.engine.set_robustness(level);
        self
    }

    /// Sets an explicit confidence threshold.
    pub fn with_threshold(mut self, threshold: ConfidenceThreshold) -> Self {
        self.engine.set_threshold(threshold);
        self
    }

    /// Sets the system-wide plan-selection mode: classic quantile
    /// pricing at the confidence threshold (`PlanSelection::Quantile`,
    /// the default), or expected-penalty minimization over the full
    /// selectivity posterior (`PlanSelection::ExpectedPenalty`).
    /// Individual queries may still override it with
    /// [`Query::with_selection`](rqo_optimizer::Query::with_selection).
    pub fn with_selection(mut self, selection: PlanSelection) -> Self {
        self.engine.set_selection(selection);
        self
    }

    /// Sets the plan cache's drift bound: a cached plan is evicted when
    /// an `EXPLAIN ANALYZE` run observes a selectivity whose q-error
    /// against the selectivity the plan was priced at exceeds `bound`.
    /// Resets the cache (the bound is part of its construction).
    pub fn with_drift_bound(mut self, bound: f64) -> Self {
        self.engine.set_drift_bound(bound);
        self
    }

    /// Converts this handle into a concurrent [`QueryService`]: one
    /// shared worker pool, admission control, and per-query
    /// deadline/cancellation over the same engine state (catalog,
    /// synopses, plan cache, feedback).
    pub fn into_service(self, config: ServiceConfig) -> QueryService {
        QueryService::new(self.engine, config)
    }

    /// The underlying shared-core engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Re-draws the precomputed samples (the `UPDATE STATISTICS`
    /// analogue), e.g. after bulk catalog changes or to average over
    /// sampling randomness.
    ///
    /// Advances the statistics epoch, which invalidates everything the
    /// old statistics justified: recorded feedback observations (they
    /// were measured against the old data shape and must not override
    /// fresh samples) and cached plans (their fingerprints embed the old
    /// epoch, and the stale entries are eagerly dropped).
    pub fn refresh_statistics(&mut self, seed: u64) {
        self.engine.refresh_statistics(seed);
    }

    /// The current statistics epoch: 0 at construction, bumped by every
    /// [`refresh_statistics`](Self::refresh_statistics).
    pub fn stats_epoch(&self) -> u64 {
        self.engine.stats_epoch()
    }

    /// The current catalog snapshot.  Owned (not a borrow): the catalog
    /// is a snapshot-swapped version under streaming ingest, so callers
    /// hold one consistent version for as long as they keep the `Arc`.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.engine.catalog()
    }

    /// Appends a batch of rows to one table (streaming ingest).
    ///
    /// Publishes a new catalog + statistics snapshot: rows are routed to
    /// their partitions, per-partition min/max and HLL distinct sketches
    /// and reservoir samples update incrementally, and invalidation is
    /// scoped to the touched table (its feedback epoch advances and only
    /// its cached plans drop — warm plans for other tables survive).
    ///
    /// # Errors
    ///
    /// Typed [`StorageError`] for unknown tables or rows failing
    /// arity/type/NULL validation; failed batches change nothing.
    pub fn insert_rows(
        &self,
        table: &str,
        rows: &[Vec<Value>],
    ) -> Result<InsertSummary, StorageError> {
        self.engine.insert_rows(table, rows)
    }

    /// The active confidence threshold.
    pub fn threshold(&self) -> ConfidenceThreshold {
        self.engine.threshold()
    }

    /// The active plan-selection mode.
    pub fn selection(&self) -> PlanSelection {
        self.engine.selection()
    }

    /// The execution-feedback store.  Empty until a query is run through
    /// [`explain_analyze`](Self::explain_analyze), which records each
    /// annotated operator's observed selectivity; subsequent calls to
    /// [`optimizer`](Self::optimizer) (and hence [`run`](Self::run))
    /// replace matching estimates with the observed values.
    pub fn feedback(&self) -> &Arc<FeedbackStore> {
        self.engine.feedback()
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        self.engine.plan_cache()
    }

    /// A point-in-time snapshot of the plan cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats()
    }

    /// An optimizer bound to this database's statistics, threshold, and
    /// feedback store.
    pub fn optimizer(&self) -> Optimizer {
        self.engine.optimizer()
    }

    /// The fingerprint under which this database would cache a query's
    /// plan right now: canonical query form × effective confidence
    /// threshold (hint included) × current statistics epoch.
    pub fn fingerprint(&self, query: &Query) -> PlanFingerprint {
        self.engine.fingerprint(query)
    }

    /// Optimizes a query through the shared plan cache: a hit returns
    /// the memoized plan (one read-lock acquisition, no enumeration); a
    /// miss plans fresh and caches the result.
    ///
    /// Cached plans are *bit-identical* to freshly planned ones —
    /// planning is deterministic given statistics, threshold, and
    /// feedback, and all three are pinned by the fingerprint plus the
    /// drift/epoch invalidation rules.
    pub fn optimize(&self, query: &Query) -> Arc<PlannedQuery> {
        self.engine.optimize(query)
    }

    /// Optimizes (through the plan cache) and executes a query,
    /// returning rows plus the simulated cost.
    ///
    /// # Panics
    ///
    /// If the options set via
    /// [`with_exec_options`](Self::with_exec_options) carry a
    /// [`QueryToken`](rqo_core::QueryToken) that fires mid-query.
    /// Cancellable execution belongs to the service API
    /// ([`into_service`](Self::into_service)), which returns the stop
    /// reason instead.
    pub fn run(&self, query: &Query) -> QueryOutcome {
        self.engine
            .run_opts(query, self.engine.exec_options())
            .expect("single-tenant run has no cancellation source; use the service API")
    }

    /// Runs a query with **mid-query adaptive re-optimization** under the
    /// database's [`AdaptivePolicy`].
    ///
    /// Execution proceeds like [`run`](Self::run), but every blocking
    /// operator whose output the plan priced (hash-join builds, aggregate
    /// inputs, merge-join inputs, nested-loop outers, index
    /// intersections) carries a runtime cardinality guard.  When the
    /// q-error between a breaker's actual and estimated cardinality
    /// exceeds the policy's guard bound, execution pauses with the
    /// breaker's output materialized; the observed selectivities of the
    /// completed subtree are recorded into [`feedback`](Self::feedback)
    /// (and drift-checked against the plan cache, evicting the triggering
    /// fingerprint when stale); the query is re-optimized at an
    /// **escalated** confidence threshold with the truth now in the
    /// feedback store; and execution resumes with the finished fragment
    /// served from memory via a grafted
    /// [`PhysicalPlan::Materialized`](rqo_exec::PhysicalPlan::Materialized)
    /// leaf.
    ///
    /// Guarantees:
    ///
    /// * **Same answers.**  Result rows are bit-identical to
    ///   [`run`](Self::run) at every thread count (for aggregate-topped
    ///   queries, whose output order is plan-independent).
    /// * **Deterministic adaptivity.**  Guard decisions compare exact
    ///   materialized cardinalities against plan-time estimates, so trip
    ///   points, re-plan counts, and the total tracked cost are identical
    ///   at 1, 2, or 8 threads.
    /// * **Cache hygiene.**  Re-planned fragments are planned directly —
    ///   never inserted into the plan cache — while the trip's
    ///   observations flow through the cache's drift rule, evicting the
    ///   plan that tripped.
    ///
    /// With [`AdaptivePolicy::disabled`] no guards are armed and the
    /// call is equivalent to [`run`](Self::run) (same plan, same rows,
    /// same simulated cost).
    pub fn run_adaptive(&self, query: &Query) -> AdaptiveOutcome {
        self.engine
            .run_adaptive_opts(query, self.engine.exec_options())
            .expect("single-tenant run has no cancellation source; use the service API")
    }

    /// `EXPLAIN ANALYZE`: optimizes and executes a query, returning the
    /// result together with a per-operator metrics tree annotated with
    /// the optimizer's cardinality estimates (estimate vs. actual rows
    /// and the q-error between them, per node).
    ///
    /// As a side effect, every annotated operator's *observed*
    /// selectivity is recorded in [`feedback`](Self::feedback), so
    /// re-optimizing the same (or an overlapping) query afterwards uses
    /// the true selectivities in place of sample-based estimates.
    ///
    /// `EXPLAIN ANALYZE` always plans fresh (its estimates must reflect
    /// the statistics and feedback of *this* moment, not a memo), caches
    /// the fresh plan, and feeds every observation through the plan
    /// cache's drift check: cached plans priced at selectivities whose
    /// q-error against the observation exceeds the drift bound are
    /// evicted, so the next [`run`](Self::run) re-plans with feedback.
    pub fn explain_analyze(&self, query: &Query) -> AnalyzedOutcome {
        self.engine
            .explain_analyze_opts(query, self.engine.exec_options())
            .expect("single-tenant run has no cancellation source; use the service API")
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn db() -> RobustDb {
        let data = TpchData::generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 3,
        });
        RobustDb::new(data.into_catalog())
    }

    #[test]
    fn facade_runs_a_query() {
        let db = db();
        let q = Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(30))
            .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
            .aggregate(AggExpr::count_star("n"));
        let outcome = db.run(&q);
        assert_eq!(outcome.rows.len(), 1);
        assert_eq!(outcome.columns, vec!["revenue", "n"]);
        assert!(outcome.simulated_seconds > 0.0);
        assert!(outcome.estimated_seconds > 0.0);
        // The count must equal the true predicate count.
        let truth = (true_selectivity(
            db.catalog().table("lineitem").unwrap(),
            &exp1_lineitem_predicate(30),
        ) * db.catalog().table("lineitem").unwrap().num_rows() as f64)
            .round() as i64;
        assert_eq!(outcome.rows[0][1].as_int(), truth);
    }

    #[test]
    fn parallel_facade_matches_serial() {
        let db = db();
        let q = Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(60))
            .aggregate(AggExpr::count_star("n"));
        let serial = db.run(&q);
        let parallel_db = db.with_exec_options(ExecOptions::with_threads(4));
        let parallel = parallel_db.run(&q);
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.simulated_seconds, parallel.simulated_seconds);
    }

    #[test]
    fn robustness_levels_change_threshold() {
        let data = TpchData::generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 3,
        });
        let db = RobustDb::new(data.into_catalog()).with_robustness(RobustnessLevel::Conservative);
        assert_eq!(db.threshold().percent(), 95.0);
        let db = db.with_threshold(ConfidenceThreshold::new(0.42));
        assert_eq!(db.threshold().percent(), 42.0);
    }

    #[test]
    fn refresh_statistics_changes_samples() {
        let mut db = db();
        let q = Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(95))
            .aggregate(AggExpr::count_star("n"));
        let before = db.run(&q).rows[0][0].clone();
        db.refresh_statistics(999);
        let after = db.run(&q).rows[0][0].clone();
        // The *answer* must be identical regardless of the sample draw —
        // statistics affect the plan, never the result.
        assert_eq!(before, after);
    }

    #[test]
    fn facade_converts_into_a_service() {
        let service = db().into_service(ServiceConfig::default());
        let q = Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(30))
            .aggregate(AggExpr::count_star("n"));
        let session = service.session();
        let through_service = session.run(&q).expect("no cancellation source");
        let reference = db().run(&q);
        assert_eq!(through_service.rows, reference.rows);
        assert_eq!(
            through_service.simulated_seconds,
            reference.simulated_seconds
        );
        assert!(service.stats().slots_balanced());
    }
}
