//! **robust-qo** — a reproduction of Babcock & Chaudhuri, *"Towards a
//! Robust Query Optimizer: A Principled and Practical Approach"*
//! (SIGMOD 2005), as a complete Rust system.
//!
//! The paper's idea in one paragraph: a query optimizer's cardinality
//! estimates are *uncertain*, and pretending otherwise is what makes
//! optimizers fragile.  Estimate the full probability distribution of
//! each predicate's selectivity (a Beta posterior inferred from a
//! precomputed random sample — a *join synopsis* for foreign-key joins),
//! then collapse it at a user-chosen **confidence threshold** `T`: the
//! optimizer prices every plan at a selectivity it is `T`-percent sure
//! will not be exceeded.  Low `T` optimizes for the typical case (fast
//! but occasionally terrible); high `T` optimizes for the realistic worst
//! case (predictable).  Because operator cost is monotone in cardinality,
//! this requires changing *only* the cardinality estimation module of a
//! conventional optimizer.
//!
//! # Workspace map
//!
//! | crate | contents |
//! |---|---|
//! | [`math`] | Beta/binomial distributions, special functions |
//! | [`storage`] | columnar tables, indexes, catalog, simulated I/O cost model |
//! | [`expr`] | predicate language evaluated on rows and samples |
//! | [`datagen`] | TPC-H-like + star-schema generators with correlation knobs |
//! | [`stats`] | samplers, join synopses, equi-depth histograms, distinct estimation |
//! | [`estimator`] | **the paper's contribution**: posteriors, thresholds, robust estimator |
//! | [`exec`] | physical operators charging the cost model |
//! | [`optimizer`] | access paths, DP join enumeration, star semijoins |
//!
//! # Quickstart
//!
//! ```
//! use robust_qo::prelude::*;
//!
//! // Generate a small TPC-H-like database and register statistics.
//! let data = TpchData::generate(&TpchConfig { scale_factor: 0.002, seed: 1 });
//! let db = RobustDb::new(data.into_catalog())
//!     .with_robustness(RobustnessLevel::Moderate);
//!
//! // The paper's Experiment-1 query: two correlated date predicates.
//! let query = Query::over(&["lineitem"])
//!     .filter("lineitem", exp1_lineitem_predicate(30))
//!     .aggregate(AggExpr::sum("l_extendedprice", "revenue"));
//!
//! let outcome = db.run(&query);
//! println!("plan:\n{}", outcome.plan.explain());
//! println!("revenue = {}, simulated time = {:.3}s",
//!          outcome.rows[0][0], outcome.simulated_seconds);
//! ```

#![warn(missing_docs)]

pub use rqo_core as estimator;
pub use rqo_datagen as datagen;
pub use rqo_exec as exec;
pub use rqo_expr as expr;
pub use rqo_math as math;
pub use rqo_optimizer as optimizer;
pub use rqo_stats as stats;
pub use rqo_storage as storage;

/// One-stop imports for applications and the examples.
pub mod prelude {
    pub use crate::{AdaptiveOutcome, AnalyzedOutcome, QueryOutcome, ReplanEvent, RobustDb};
    pub use rqo_core::{
        AdaptivePolicy, CardinalityEstimator, ConfidenceThreshold,
        DistributionalHistogramEstimator, EstimateSource, EstimationRequest, EstimatorConfig,
        FeedbackStore, HistogramEstimator, MagicPolicy, OnTheFlyEstimator, Prior, RobustEstimator,
        RobustnessLevel, SelectivityPosterior,
    };
    pub use rqo_datagen::workload::{
        exp1_lineitem_predicate, exp2_part_predicate, exp3_dim_predicate, true_selectivity,
    };
    pub use rqo_datagen::{StarConfig, StarData, TpchConfig, TpchData};
    pub use rqo_exec::{AggExpr, ExecOptions, OpMetrics, PhysicalPlan};
    pub use rqo_expr::Expr;
    pub use rqo_optimizer::{CacheStats, PlanCache, PlanFingerprint};
    pub use rqo_optimizer::{Optimizer, PlannedQuery, Query};
    pub use rqo_stats::SynopsisRepository;
    pub use rqo_storage::{
        parse_date, Catalog, CostParams, DataType, Schema, Table, TableBuilder, Value,
    };
}

use std::sync::Arc;

use rqo_core::{
    AdaptivePolicy, ConfidenceThreshold, EstimatorConfig, FeedbackStore, RobustEstimator,
    RobustnessLevel,
};
use rqo_exec::{
    execute_guarded, guard_points, Batch, ExecOptions, ExecStatus, OpMetrics, PhysicalPlan,
    RowGuard,
};
use rqo_optimizer::{
    CacheStats, MaterializedFragment, Optimizer, PlanCache, PlanFingerprint, PlannedQuery, Query,
};
use rqo_stats::SynopsisRepository;
use rqo_storage::{Catalog, CostParams, CostTracker, Value};

/// The result of running one query through [`RobustDb`].
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The plan the optimizer chose.
    pub plan: PhysicalPlan,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Output column names.
    pub columns: Vec<String>,
    /// Simulated execution time in seconds under the database's cost
    /// parameters.
    pub simulated_seconds: f64,
    /// The optimizer's own cost estimate, in seconds, for comparison.
    pub estimated_seconds: f64,
}

/// The result of [`RobustDb::explain_analyze`]: a [`QueryOutcome`] plus
/// the per-operator metrics tree, annotated with the optimizer's own
/// cardinality estimates so every node reports estimate vs. actual and
/// the q-error between them.
#[derive(Debug, Clone)]
pub struct AnalyzedOutcome {
    /// The ordinary query result.
    pub outcome: QueryOutcome,
    /// Per-operator metrics, in the same tree shape as the plan.
    pub metrics: OpMetrics,
}

impl AnalyzedOutcome {
    /// Renders the annotated plan tree — the `EXPLAIN ANALYZE` output.
    ///
    /// Deterministic: identical at every thread count and morsel size for
    /// the same database and query.
    pub fn render(&self) -> String {
        self.metrics.render()
    }
}

/// One mid-query re-plan, as recorded by [`RobustDb::run_adaptive`].
#[derive(Debug, Clone)]
pub struct ReplanEvent {
    /// Pre-order index of the tripped guard's node in the plan that was
    /// executing when the guard fired.
    pub node: usize,
    /// Operator label of the tripped node.
    pub label: String,
    /// Output rows the plan priced the node at.
    pub est_rows: f64,
    /// Rows actually materialized at the pipeline breaker.
    pub actual_rows: u64,
    /// q-error between them (> the policy's guard bound, by construction).
    pub q_error: f64,
    /// Confidence threshold the tripped plan was optimized at.
    pub threshold_before: ConfidenceThreshold,
    /// Escalated threshold the re-plan was optimized at.
    pub threshold_after: ConfidenceThreshold,
    /// Observed selectivities fed back before re-planning.
    pub observations: usize,
    /// Whether the re-plan grafted a `Materialized` leaf over the
    /// finished fragment (`false` ⇒ the fresh plan had no matching
    /// subtree and recomputes from scratch — correct, just not resumed).
    pub resumed: bool,
    /// Shape of the plan that tripped.
    pub old_shape: String,
    /// Shape of the re-planned query.
    pub new_shape: String,
}

impl ReplanEvent {
    /// Renders the event as one log paragraph (deterministic).
    pub fn render(&self) -> String {
        format!(
            "guard tripped at node {} [{}]: est {:.1} rows, actual {} rows, q-error {:.2}\n  \
             threshold {}% -> {}%; {} observation(s) fed back; {}\n  \
             plan: {} -> {}",
            self.node,
            self.label,
            self.est_rows,
            self.actual_rows,
            self.q_error,
            self.threshold_before.percent(),
            self.threshold_after.percent(),
            self.observations,
            if self.resumed {
                "resumed from materialized checkpoint"
            } else {
                "no matching subtree, recomputing"
            },
            self.old_shape,
            self.new_shape,
        )
    }
}

/// The result of [`RobustDb::run_adaptive`]: the query outcome, the
/// re-plan event log, and the metrics tree of the final (completed)
/// execution.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The ordinary query result.  `plan` is the plan that ran to
    /// completion; `simulated_seconds` is the **total** tracked cost
    /// including all partial executions before re-plans, and
    /// `estimated_seconds` is the first plan's estimate.
    pub outcome: QueryOutcome,
    /// One entry per guard trip, in order.
    pub events: Vec<ReplanEvent>,
    /// Per-operator metrics of the completed execution, annotated with
    /// the final plan's estimates.
    pub metrics: OpMetrics,
}

impl AdaptiveOutcome {
    /// Number of mid-query re-plans that occurred.
    pub fn replans(&self) -> usize {
        self.events.len()
    }

    /// Renders the re-plan event log followed by the final plan's
    /// annotated metrics tree.  Deterministic: identical at every thread
    /// count for the same database and query.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "adaptive execution: {} re-plan(s)\n",
            self.replans()
        ));
        for (i, event) in self.events.iter().enumerate() {
            out.push_str(&format!("[{}] {}\n", i + 1, event.render()));
        }
        out.push_str("final plan:\n");
        out.push_str(&self.metrics.render());
        out
    }
}

/// A batteries-included database handle: catalog + precomputed join
/// synopses + a robust optimizer, behind one `run(query)` call.
///
/// This is the "downstream user" API; the individual crates expose every
/// layer for finer control (custom estimators, cost parameters, multiple
/// samples, ...).
pub struct RobustDb {
    catalog: Arc<Catalog>,
    params: CostParams,
    synopses: Arc<SynopsisRepository>,
    threshold: ConfidenceThreshold,
    sample_size: usize,
    seed: u64,
    exec_options: ExecOptions,
    feedback: Arc<FeedbackStore>,
    plan_cache: Arc<PlanCache>,
    adaptive_policy: AdaptivePolicy,
}

impl RobustDb {
    /// Builds the database over a catalog, precomputing 500-tuple join
    /// synopses (the paper's recommended size) for every table.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_options(catalog, CostParams::default(), 500, 0xD5)
    }

    /// Full-control constructor: cost parameters, synopsis sample size,
    /// and sampling seed.
    pub fn with_options(
        catalog: Catalog,
        params: CostParams,
        sample_size: usize,
        seed: u64,
    ) -> Self {
        let catalog = Arc::new(catalog);
        let synopses = Arc::new(SynopsisRepository::build_all(&catalog, sample_size, seed));
        Self {
            catalog,
            params,
            synopses,
            threshold: RobustnessLevel::Moderate.threshold(),
            sample_size,
            seed,
            exec_options: ExecOptions::default(),
            feedback: Arc::new(FeedbackStore::new()),
            plan_cache: Arc::new(PlanCache::default()),
            adaptive_policy: AdaptivePolicy::default(),
        }
    }

    /// Sets the adaptive re-optimization policy used by
    /// [`run_adaptive`](Self::run_adaptive): guard bound, threshold
    /// escalation schedule, and re-plan budget.
    /// [`AdaptivePolicy::disabled`] makes `run_adaptive` identical to
    /// [`run`](Self::run).
    pub fn with_adaptive_policy(mut self, policy: AdaptivePolicy) -> Self {
        self.adaptive_policy = policy;
        self
    }

    /// The active adaptive re-optimization policy.
    pub fn adaptive_policy(&self) -> &AdaptivePolicy {
        &self.adaptive_policy
    }

    /// Sets the executor's parallelism knobs (worker threads, morsel
    /// size).  Results and simulated costs are identical for every
    /// setting — only wall-clock time changes.
    pub fn with_exec_options(mut self, exec_options: ExecOptions) -> Self {
        self.exec_options = exec_options;
        self
    }

    /// Sets the system-wide robustness preset (§6.2.5): conservative,
    /// moderate, or aggressive.  Individual queries may still override it
    /// with [`Query::with_hint`](rqo_optimizer::Query::with_hint).
    pub fn with_robustness(mut self, level: RobustnessLevel) -> Self {
        self.threshold = level.threshold();
        self
    }

    /// Sets an explicit confidence threshold.
    pub fn with_threshold(mut self, threshold: ConfidenceThreshold) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the plan cache's drift bound: a cached plan is evicted when
    /// an `EXPLAIN ANALYZE` run observes a selectivity whose q-error
    /// against the selectivity the plan was priced at exceeds `bound`.
    /// Resets the cache (the bound is part of its construction).
    pub fn with_drift_bound(mut self, bound: f64) -> Self {
        self.plan_cache = Arc::new(PlanCache::new(bound));
        self
    }

    /// Re-draws the precomputed samples (the `UPDATE STATISTICS`
    /// analogue), e.g. after bulk catalog changes or to average over
    /// sampling randomness.
    ///
    /// Advances the statistics epoch, which invalidates everything the
    /// old statistics justified: recorded feedback observations (they
    /// were measured against the old data shape and must not override
    /// fresh samples) and cached plans (their fingerprints embed the old
    /// epoch, and the stale entries are eagerly dropped).
    pub fn refresh_statistics(&mut self, seed: u64) {
        self.seed = seed;
        self.synopses = Arc::new(SynopsisRepository::build_all(
            &self.catalog,
            self.sample_size,
            seed,
        ));
        let epoch = self.feedback.advance_epoch();
        self.plan_cache.invalidate_epochs_before(epoch);
    }

    /// The current statistics epoch: 0 at construction, bumped by every
    /// [`refresh_statistics`](Self::refresh_statistics).
    pub fn stats_epoch(&self) -> u64 {
        self.feedback.epoch()
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The active confidence threshold.
    pub fn threshold(&self) -> ConfidenceThreshold {
        self.threshold
    }

    /// The execution-feedback store.  Empty until a query is run through
    /// [`explain_analyze`](Self::explain_analyze), which records each
    /// annotated operator's observed selectivity; subsequent calls to
    /// [`optimizer`](Self::optimizer) (and hence [`run`](Self::run))
    /// replace matching estimates with the observed values.
    pub fn feedback(&self) -> &Arc<FeedbackStore> {
        &self.feedback
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// A point-in-time snapshot of the plan cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.plan_cache.stats()
    }

    /// An optimizer bound to this database's statistics, threshold, and
    /// feedback store.
    pub fn optimizer(&self) -> Optimizer {
        let est = RobustEstimator::new(
            Arc::clone(&self.synopses),
            EstimatorConfig::with_threshold(self.threshold),
        )
        .with_feedback(Arc::clone(&self.feedback));
        Optimizer::new(Arc::clone(&self.catalog), self.params, Arc::new(est))
    }

    /// The fingerprint under which this database would cache a query's
    /// plan right now: canonical query form × effective confidence
    /// threshold (hint included) × current statistics epoch.
    pub fn fingerprint(&self, query: &Query) -> PlanFingerprint {
        PlanFingerprint::of(query, self.threshold, self.feedback.epoch())
    }

    /// Optimizes a query through the shared plan cache: a hit returns
    /// the memoized plan (one read-lock acquisition, no enumeration); a
    /// miss plans fresh and caches the result.
    ///
    /// Cached plans are *bit-identical* to freshly planned ones —
    /// planning is deterministic given statistics, threshold, and
    /// feedback, and all three are pinned by the fingerprint plus the
    /// drift/epoch invalidation rules.
    pub fn optimize(&self, query: &Query) -> Arc<PlannedQuery> {
        let fingerprint = self.fingerprint(query);
        if let Some(planned) = self.plan_cache.get(&fingerprint) {
            return planned;
        }
        let planned = self.optimizer().optimize(query);
        self.plan_cache.insert(fingerprint, planned)
    }

    /// Optimizes (through the plan cache) and executes a query,
    /// returning rows plus the simulated cost.
    pub fn run(&self, query: &Query) -> QueryOutcome {
        let planned = self.optimize(query);
        let (batch, cost) = rqo_exec::execute_with(
            &planned.plan,
            &self.catalog,
            &self.params,
            &self.exec_options,
        );
        let Batch { schema, rows } = batch;
        QueryOutcome {
            plan: planned.plan.clone(),
            columns: schema.names().iter().map(|s| s.to_string()).collect(),
            rows,
            simulated_seconds: cost.seconds(&self.params),
            estimated_seconds: planned.estimated_cost_ms / 1000.0,
        }
    }

    /// Records one annotated node's observed selectivity into the
    /// feedback store and the plan cache's drift check.  Returns whether
    /// the node had a recordable estimation request.
    fn record_observation(&self, rows_out: u64, ann: &rqo_optimizer::NodeAnnotation) -> bool {
        if ann.predicates.is_empty() || ann.root_rows <= 0.0 {
            return false;
        }
        // Floor at half a tuple: a zero-row result is evidence the
        // selectivity is *small*, not that it is exactly 0.0 — a pinned
        // zero would price every later plan for this predicate at zero
        // cardinality forever.
        let observed = ((rows_out as f64).max(0.5) / ann.root_rows).clamp(0.0, 1.0);
        let tables: Vec<&str> = ann.tables.iter().map(String::as_str).collect();
        let predicates: Vec<_> = ann
            .predicates
            .iter()
            .map(|(t, e)| (t.as_str(), e))
            .collect();
        self.feedback.record(&tables, &predicates, observed);
        let key = FeedbackStore::canonical_key(&tables, &predicates);
        self.plan_cache.observe(&key, observed);
        true
    }

    /// Runs a query with **mid-query adaptive re-optimization** under the
    /// database's [`AdaptivePolicy`].
    ///
    /// Execution proceeds like [`run`](Self::run), but every blocking
    /// operator whose output the plan priced (hash-join builds, aggregate
    /// inputs, merge-join inputs, nested-loop outers, index
    /// intersections) carries a runtime cardinality guard.  When the
    /// q-error between a breaker's actual and estimated cardinality
    /// exceeds the policy's guard bound, execution pauses with the
    /// breaker's output materialized; the observed selectivities of the
    /// completed subtree are recorded into [`feedback`](Self::feedback)
    /// (and drift-checked against the plan cache, evicting the triggering
    /// fingerprint when stale); the query is re-optimized at an
    /// **escalated** confidence threshold with the truth now in the
    /// feedback store; and execution resumes with the finished fragment
    /// served from memory via a grafted
    /// [`PhysicalPlan::Materialized`] leaf.
    ///
    /// Guarantees:
    ///
    /// * **Same answers.**  Result rows are bit-identical to
    ///   [`run`](Self::run) at every thread count (for aggregate-topped
    ///   queries, whose output order is plan-independent).
    /// * **Deterministic adaptivity.**  Guard decisions compare exact
    ///   materialized cardinalities against plan-time estimates, so trip
    ///   points, re-plan counts, and the total tracked cost are identical
    ///   at 1, 2, or 8 threads.
    /// * **Cache hygiene.**  Re-planned fragments are planned directly —
    ///   never inserted into the plan cache — while the trip's
    ///   observations flow through the cache's drift rule, evicting the
    ///   plan that tripped.
    ///
    /// With [`AdaptivePolicy::disabled`] no guards are armed and the
    /// call is equivalent to [`run`](Self::run) (same plan, same rows,
    /// same simulated cost).
    pub fn run_adaptive(&self, query: &Query) -> AdaptiveOutcome {
        let policy = self.adaptive_policy.clone();
        let mut threshold = query.hint.unwrap_or(self.threshold);
        let mut planned: Arc<PlannedQuery> = self.optimize(query);
        let estimated_seconds = planned.estimated_cost_ms / 1000.0;
        let mut tracker = CostTracker::new();
        let mut events: Vec<ReplanEvent> = Vec::new();
        let mut slots: Vec<Batch> = Vec::new();

        loop {
            // Guards stay armed while the re-plan budget lasts; the final
            // permitted execution runs unguarded to completion.
            let guards: Vec<RowGuard> = if policy.is_enabled() && events.len() < policy.max_replans
            {
                guard_points(&planned.plan)
                    .into_iter()
                    .filter_map(|idx| {
                        let ann = planned.node_annotations.get(idx)?.as_ref()?;
                        (!ann.tables.is_empty()).then_some(RowGuard {
                            node: idx,
                            est_rows: ann.est_rows,
                            bound: policy.guard_bound,
                        })
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let status = execute_guarded(
                &planned.plan,
                &self.catalog,
                &self.params,
                &self.exec_options,
                &guards,
                &slots,
                &mut tracker,
            );
            match status {
                ExecStatus::Complete { batch, mut metrics } => {
                    metrics.annotate(&planned.node_estimates());
                    let Batch { schema, rows } = batch;
                    return AdaptiveOutcome {
                        outcome: QueryOutcome {
                            plan: planned.plan.clone(),
                            columns: schema.names().iter().map(|s| s.to_string()).collect(),
                            rows,
                            simulated_seconds: tracker.seconds(&self.params),
                            estimated_seconds,
                        },
                        events,
                        metrics,
                    };
                }
                ExecStatus::Tripped(trip) => {
                    // The tripped node's subtree is complete: feed its
                    // observed selectivities back before re-planning.  In
                    // pre-order a subtree is a contiguous block starting
                    // at its root, so the subtree's metrics zip with the
                    // annotations from `trip.node` on.
                    let mut observations = 0;
                    for (node, annotation) in trip
                        .metrics
                        .preorder()
                        .iter()
                        .zip(&planned.node_annotations[trip.node..])
                    {
                        let Some(ann) = annotation else { continue };
                        if self.record_observation(node.rows_out, ann) {
                            observations += 1;
                        }
                    }
                    let before = threshold;
                    threshold = policy.escalate(threshold, events.len());
                    let ann = planned.node_annotations[trip.node]
                        .as_ref()
                        .expect("guards are only armed on annotated nodes");
                    let fragment = MaterializedFragment::from_annotation(ann, slots.len());
                    // Re-plan directly — NOT through `self.optimize` —
                    // so the grafted plan never enters the plan cache.
                    let replan_query = query.clone().with_hint(threshold);
                    let (new_planned, resumed) = self
                        .optimizer()
                        .replan_with_materialized(&replan_query, &fragment);
                    events.push(ReplanEvent {
                        node: trip.node,
                        label: trip.metrics.label.clone(),
                        est_rows: trip.est_rows,
                        actual_rows: trip.actual_rows,
                        q_error: trip.q_error,
                        threshold_before: before,
                        threshold_after: threshold,
                        observations,
                        resumed,
                        old_shape: planned.shape(),
                        new_shape: new_planned.shape(),
                    });
                    if resumed {
                        slots.push(trip.batch);
                    }
                    planned = Arc::new(new_planned);
                }
            }
        }
    }

    /// `EXPLAIN ANALYZE`: optimizes and executes a query, returning the
    /// result together with a per-operator metrics tree annotated with
    /// the optimizer's cardinality estimates (estimate vs. actual rows
    /// and the q-error between them, per node).
    ///
    /// As a side effect, every annotated operator's *observed*
    /// selectivity is recorded in [`feedback`](Self::feedback), so
    /// re-optimizing the same (or an overlapping) query afterwards uses
    /// the true selectivities in place of sample-based estimates.
    ///
    /// `EXPLAIN ANALYZE` always plans fresh (its estimates must reflect
    /// the statistics and feedback of *this* moment, not a memo), caches
    /// the fresh plan, and feeds every observation through the plan
    /// cache's drift check: cached plans priced at selectivities whose
    /// q-error against the observation exceeds the drift bound are
    /// evicted, so the next [`run`](Self::run) re-plans with feedback.
    pub fn explain_analyze(&self, query: &Query) -> AnalyzedOutcome {
        let planned = self
            .plan_cache
            .insert(self.fingerprint(query), self.optimizer().optimize(query));
        let (batch, cost, mut metrics) = rqo_exec::execute_analyze(
            &planned.plan,
            &self.catalog,
            &self.params,
            &self.exec_options,
        );
        metrics.annotate(&planned.node_estimates());

        // Record observed selectivities: each annotated node's actual
        // output cardinality, relative to the root relation the planner
        // priced it against, keyed by the exact (tables, predicates)
        // request the estimator answered during planning.
        for (node, annotation) in metrics.preorder().iter().zip(&planned.node_annotations) {
            let Some(ann) = annotation else { continue };
            self.record_observation(node.rows_out, ann);
        }

        let Batch { schema, rows } = batch;
        AnalyzedOutcome {
            outcome: QueryOutcome {
                plan: planned.plan.clone(),
                columns: schema.names().iter().map(|s| s.to_string()).collect(),
                rows,
                simulated_seconds: cost.seconds(&self.params),
                estimated_seconds: planned.estimated_cost_ms / 1000.0,
            },
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn db() -> RobustDb {
        let data = TpchData::generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 3,
        });
        RobustDb::new(data.into_catalog())
    }

    #[test]
    fn facade_runs_a_query() {
        let db = db();
        let q = Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(30))
            .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
            .aggregate(AggExpr::count_star("n"));
        let outcome = db.run(&q);
        assert_eq!(outcome.rows.len(), 1);
        assert_eq!(outcome.columns, vec!["revenue", "n"]);
        assert!(outcome.simulated_seconds > 0.0);
        assert!(outcome.estimated_seconds > 0.0);
        // The count must equal the true predicate count.
        let truth = (true_selectivity(
            db.catalog().table("lineitem").unwrap(),
            &exp1_lineitem_predicate(30),
        ) * db.catalog().table("lineitem").unwrap().num_rows() as f64)
            .round() as i64;
        assert_eq!(outcome.rows[0][1].as_int(), truth);
    }

    #[test]
    fn parallel_facade_matches_serial() {
        let db = db();
        let q = Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(60))
            .aggregate(AggExpr::count_star("n"));
        let serial = db.run(&q);
        let parallel_db = db.with_exec_options(ExecOptions::with_threads(4));
        let parallel = parallel_db.run(&q);
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.simulated_seconds, parallel.simulated_seconds);
    }

    #[test]
    fn robustness_levels_change_threshold() {
        let data = TpchData::generate(&TpchConfig {
            scale_factor: 0.002,
            seed: 3,
        });
        let db = RobustDb::new(data.into_catalog()).with_robustness(RobustnessLevel::Conservative);
        assert_eq!(db.threshold().percent(), 95.0);
        let db = db.with_threshold(ConfidenceThreshold::new(0.42));
        assert_eq!(db.threshold().percent(), 42.0);
    }

    #[test]
    fn refresh_statistics_changes_samples() {
        let mut db = db();
        let q = Query::over(&["lineitem"])
            .filter("lineitem", exp1_lineitem_predicate(95))
            .aggregate(AggExpr::count_star("n"));
        let before = db.run(&q).rows[0][0].clone();
        db.refresh_statistics(999);
        let after = db.run(&q).rows[0][0].clone();
        // The *answer* must be identical regardless of the sample draw —
        // statistics affect the plan, never the result.
        assert_eq!(before, after);
    }
}
