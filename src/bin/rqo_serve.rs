//! `rqo_serve` — a multi-client driver for the concurrent query service.
//!
//! Spins up one [`QueryService`] (shared worker pool + admission control)
//! over a TPC-H-like catalog and hammers it from N client threads, each
//! replaying the paper's experiment queries through its own session.
//! Every client checks its rows against a precomputed reference, so the
//! run doubles as a live concurrency-correctness check; the tail of the
//! output shows the service counters, including the deadline/cancellation
//! demo queries.
//!
//! ```sh
//! rqo_serve [--clients N] [--rounds N] [--scale F] [--seed N] \
//!           [--workers N] [--max-concurrent N] [--queue-capacity N] [--tiny]
//! ```
//!
//! With `--listen ADDR` it instead becomes a **network server**: the
//! same service behind the length-prefixed wire protocol, accepting TCP
//! clients until killed and printing its counters once a second when
//! they change.  `--connect ADDR` is the matching client: it replays
//! the workload over the wire and prints each reply's shape and
//! latency.
//!
//! ```sh
//! rqo_serve --listen 127.0.0.1:4410 [--scale F] [--max-connections N] \
//!           [--tenant-quota N] ...
//! rqo_serve --connect 127.0.0.1:4410 [--rounds N] [--tenant NAME]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use robust_qo::prelude::*;

struct Args {
    clients: usize,
    rounds: usize,
    scale: f64,
    seed: u64,
    workers: usize,
    max_concurrent: usize,
    queue_capacity: usize,
    listen: Option<String>,
    connect: Option<String>,
    max_connections: usize,
    tenant_quota: usize,
    tenant: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            clients: 4,
            rounds: 25,
            scale: 0.01,
            seed: 42,
            workers: 2,
            max_concurrent: 4,
            queue_capacity: 64,
            listen: None,
            connect: None,
            max_connections: 512,
            tenant_quota: 0,
            tenant: "default".to_string(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                // CI smoke preset: small catalog, short run.
                "--tiny" => {
                    args.scale = 0.002;
                    args.rounds = 5;
                    i += 1;
                }
                flag => {
                    let value = argv
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("missing value after {flag}"));
                    match flag {
                        "--clients" => args.clients = value.parse().expect("--clients"),
                        "--rounds" => args.rounds = value.parse().expect("--rounds"),
                        "--scale" => args.scale = value.parse().expect("--scale"),
                        "--seed" => args.seed = value.parse().expect("--seed"),
                        "--workers" => args.workers = value.parse().expect("--workers"),
                        "--max-concurrent" => {
                            args.max_concurrent = value.parse().expect("--max-concurrent")
                        }
                        "--queue-capacity" => {
                            args.queue_capacity = value.parse().expect("--queue-capacity")
                        }
                        "--listen" => args.listen = Some(value.clone()),
                        "--connect" => args.connect = Some(value.clone()),
                        "--max-connections" => {
                            args.max_connections = value.parse().expect("--max-connections")
                        }
                        "--tenant-quota" => {
                            args.tenant_quota = value.parse().expect("--tenant-quota")
                        }
                        "--tenant" => args.tenant = value.clone(),
                        other => panic!("unknown flag {other:?}"),
                    }
                    i += 2;
                }
            }
        }
        args
    }
}

/// The client workload: single-table windows and three-way joins, all
/// aggregate-topped so results are order-independent.
fn workload() -> Vec<Query> {
    let mut queries = Vec::new();
    for offset in [30i64, 60, 110] {
        queries.push(
            Query::over(&["lineitem"])
                .filter("lineitem", exp1_lineitem_predicate(offset))
                .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
                .aggregate(AggExpr::count_star("n")),
        );
    }
    for window in [150i64, 212] {
        queries.push(
            Query::over(&["lineitem", "orders", "part"])
                .filter("part", exp2_part_predicate(window))
                .aggregate(AggExpr::count_star("n")),
        );
    }
    queries
}

/// `--listen` mode: serve the wire protocol until killed.
fn listen_mode(args: &Args, addr: &str) -> ! {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: args.scale,
        seed: args.seed,
    });
    let service = RobustDb::new(data.into_catalog()).into_service(
        ServiceConfig::default()
            .with_workers(args.workers)
            .with_max_concurrent(args.max_concurrent)
            .with_queue_capacity(args.queue_capacity)
            .with_queue_timeout(Duration::from_secs(30)),
    );
    let mut config = NetServerConfig::default().with_max_connections(args.max_connections);
    if args.tenant_quota > 0 {
        config = config.with_tenant_quota(args.tenant_quota);
    }
    let server = NetServer::bind(service, addr, config).expect("bind listen address");
    println!(
        "listening on {}  (scale={}, workers={}, max_concurrent={}, max_connections={})",
        server.local_addr(),
        args.scale,
        args.workers,
        args.max_concurrent,
        args.max_connections
    );
    let mut last = String::new();
    loop {
        std::thread::sleep(Duration::from_secs(1));
        let line = format!("{} | {}", server.stats(), server.service().stats());
        if line != last {
            println!("{line}");
            last = line;
        }
    }
}

/// `--connect` mode: replay the workload over the wire.
fn connect_mode(args: &Args, addr: &str) {
    let mut client = NetClient::connect(addr).expect("connect to server");
    client.hello(&args.tenant).expect("hello");
    let queries = workload();
    let start = Instant::now();
    let mut ran = 0usize;
    for round in 0..args.rounds {
        for (qi, query) in queries.iter().enumerate() {
            let t0 = Instant::now();
            match client.run(query) {
                Ok(reply) => {
                    ran += 1;
                    println!(
                        "round {round} query {qi}: {} row(s) × {} col(s) in {:.1}ms \
                         (simulated {:.3}s)",
                        reply.rows.len(),
                        reply.columns.len(),
                        t0.elapsed().as_secs_f64() * 1e3,
                        reply.simulated_seconds
                    );
                }
                Err(e) => println!("round {round} query {qi}: ERROR {e}"),
            }
        }
    }
    println!(
        "\n{} queries in {:.2}s over one connection to {addr}",
        ran,
        start.elapsed().as_secs_f64()
    );
}

fn main() {
    let args = Args::parse();
    if let Some(addr) = args.listen.clone() {
        listen_mode(&args, &addr);
    }
    if let Some(addr) = args.connect.clone() {
        connect_mode(&args, &addr);
        return;
    }
    let data = TpchData::generate(&TpchConfig {
        scale_factor: args.scale,
        seed: args.seed,
    });
    let service = RobustDb::new(data.into_catalog()).into_service(
        ServiceConfig::default()
            .with_workers(args.workers)
            .with_max_concurrent(args.max_concurrent)
            .with_queue_capacity(args.queue_capacity)
            .with_queue_timeout(Duration::from_secs(30)),
    );
    let queries = workload();

    // Reference answers, computed once through the service itself while
    // it is otherwise idle.
    let warm = service.session();
    let expected: Vec<Vec<Vec<Value>>> = queries
        .iter()
        .map(|q| warm.run(q).expect("reference run").rows)
        .collect();

    println!(
        "serving {} clients × {} rounds × {} queries  \
         (workers={}, max_concurrent={}, queue={})",
        args.clients,
        args.rounds,
        queries.len(),
        args.workers,
        args.max_concurrent,
        args.queue_capacity
    );

    let mismatches = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..args.clients {
            let service = &service;
            let queries = &queries;
            let expected = &expected;
            let mismatches = &mismatches;
            scope.spawn(move || {
                let session = service.session();
                for round in 0..args.rounds {
                    // Stagger each client's starting query so concurrent
                    // clients mix cheap and expensive work.
                    for k in 0..queries.len() {
                        let qi = (client + round + k) % queries.len();
                        let outcome = session.run(&queries[qi]).expect("no cancellation source");
                        if outcome.rows != expected[qi] {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let total = args.clients * args.rounds * queries.len();

    // Deadline/cancellation demo: both must stop cleanly and release
    // their slots (visible in the counters below).
    let session = service.session();
    let cancelled = QueryHandle::new();
    cancelled.cancel();
    match session.run_with(&queries[0], &cancelled) {
        Err(ServiceError::Stopped(reason)) => println!("\ncancelled demo query: {reason}"),
        other => println!("\ncancelled demo query: unexpected {other:?}"),
    }
    let expired = QueryHandle::with_deadline(Duration::ZERO);
    match session.run_with(&queries[0], &expired) {
        Err(ServiceError::Stopped(reason)) => println!("expired-deadline demo query: {reason}"),
        other => println!("expired-deadline demo query: unexpected {other:?}"),
    }

    let lost = mismatches.load(Ordering::Relaxed);
    println!(
        "\n{} queries in {:.2}s  ({:.0} queries/s), {} result mismatches",
        total,
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64(),
        lost
    );
    println!("plan cache: {}", service.engine().cache_stats());
    println!("service:    {}", service.stats());
    let stats = service.stats();
    assert_eq!(lost, 0, "concurrent clients observed wrong rows");
    assert!(stats.slots_balanced(), "execution slots leaked: {stats}");
}
