//! `rqo_demo` — command-line driver for the three paper scenarios.
//!
//! ```sh
//! rqo_demo exp1 --offset 110 --threshold 80 --scale 0.01
//! rqo_demo exp2 --window 212 --threshold 50
//! rqo_demo exp3 --level 2 --fact-rows 500000 --threshold 95
//! ```
//!
//! Prints the chosen plan, the result row, the simulated execution time,
//! and — for contrast — what the histogram-based baseline would have
//! picked for the same query.

use std::sync::Arc;

use robust_qo::prelude::*;

struct Args {
    scenario: String,
    offset: i64,
    window: i64,
    level: i64,
    threshold_pct: f64,
    selection: PlanSelection,
    scale: f64,
    fact_rows: usize,
    seed: u64,
    threads: usize,
    explain_analyze: bool,
    adaptive: bool,
    force_misestimate: bool,
    repeat: usize,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            scenario: String::new(),
            offset: 110,
            window: 212,
            level: 2,
            threshold_pct: 80.0,
            selection: PlanSelection::Quantile,
            scale: 0.01,
            fact_rows: 500_000,
            seed: 7,
            threads: 1,
            explain_analyze: false,
            adaptive: false,
            force_misestimate: false,
            repeat: 0,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.is_empty() {
            eprintln!(
                "usage: rqo_demo <exp1|exp2|exp3> [--offset N] [--window N] [--level N] \
                 [--threshold PCT] [--selection quantile|penalty] [--scale F] [--fact-rows N] \
                 [--seed N] [--threads N] [--explain-analyze] [--adaptive] \
                 [--force-misestimate] [--repeat N]"
            );
            std::process::exit(2);
        }
        args.scenario = argv[0].clone();
        let mut i = 1;
        while i < argv.len() {
            let flag = argv[i].as_str();
            // Boolean flags take no value.
            if flag == "--explain-analyze" {
                args.explain_analyze = true;
                i += 1;
                continue;
            }
            if flag == "--adaptive" {
                args.adaptive = true;
                i += 1;
                continue;
            }
            if flag == "--force-misestimate" {
                args.force_misestimate = true;
                i += 1;
                continue;
            }
            let value = argv
                .get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {flag}"));
            match flag {
                "--offset" => args.offset = value.parse().expect("--offset"),
                "--window" => args.window = value.parse().expect("--window"),
                "--level" => args.level = value.parse().expect("--level"),
                "--threshold" => args.threshold_pct = value.parse().expect("--threshold"),
                "--selection" => {
                    args.selection = PlanSelection::parse(value).unwrap_or_else(|| {
                        panic!("--selection expects quantile|penalty, got {value:?}")
                    })
                }
                "--scale" => args.scale = value.parse().expect("--scale"),
                "--fact-rows" => args.fact_rows = value.parse().expect("--fact-rows"),
                "--seed" => args.seed = value.parse().expect("--seed"),
                "--threads" => args.threads = value.parse().expect("--threads"),
                "--repeat" => args.repeat = value.parse().expect("--repeat"),
                other => panic!("unknown flag {other:?}"),
            }
            i += 2;
        }
        args
    }
}

fn main() {
    let args = Args::parse();
    if !(0.0 < args.threshold_pct && args.threshold_pct < 100.0) {
        eprintln!(
            "--threshold must be strictly between 0 and 100 (got {})",
            args.threshold_pct
        );
        std::process::exit(2);
    }
    let threshold = ConfidenceThreshold::from_percent(args.threshold_pct);

    let (catalog, query) = match args.scenario.as_str() {
        "exp1" => {
            let cat = TpchData::generate(&TpchConfig {
                scale_factor: args.scale,
                seed: args.seed,
            })
            .into_catalog();
            let q = Query::over(&["lineitem"])
                .filter("lineitem", exp1_lineitem_predicate(args.offset))
                .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
                .aggregate(AggExpr::count_star("n"));
            (cat, q)
        }
        "exp2" => {
            let cat = TpchData::generate(&TpchConfig {
                scale_factor: args.scale,
                seed: args.seed,
            })
            .into_catalog();
            let q = Query::over(&["lineitem", "orders", "part"])
                .filter("part", exp2_part_predicate(args.window))
                .aggregate(AggExpr::sum("l_extendedprice", "revenue"))
                .aggregate(AggExpr::count_star("n"));
            (cat, q)
        }
        "exp3" => {
            let cat = StarData::generate(&StarConfig {
                fact_rows: args.fact_rows,
                seed: args.seed,
            })
            .into_catalog();
            let mut q = Query::over(&["fact", "dim1", "dim2", "dim3"])
                .aggregate(AggExpr::sum("f_measure1", "total"))
                .aggregate(AggExpr::count_star("n"));
            for dim in ["dim1", "dim2", "dim3"] {
                q = q.filter(dim, exp3_dim_predicate(args.level));
            }
            (cat, q)
        }
        other => {
            eprintln!("unknown scenario {other:?} (expected exp1|exp2|exp3)");
            std::process::exit(2);
        }
    };

    // Histogram baseline for contrast (before the catalog moves into the
    // facade).
    let catalog = Arc::new(catalog);
    let baseline: Arc<dyn CardinalityEstimator> =
        Arc::new(HistogramEstimator::build_default(&catalog));
    let baseline_opt = Optimizer::new(Arc::clone(&catalog), CostParams::default(), baseline);
    let baseline_plan = baseline_opt.optimize(&query);

    let db = RobustDb::with_options(
        Arc::try_unwrap(catalog).unwrap_or_else(|arc| (*arc).clone()),
        CostParams::default(),
        500,
        args.seed,
    )
    .with_threshold(threshold)
    .with_selection(args.selection)
    .with_exec_options(ExecOptions::with_threads(args.threads));

    // Plant a wildly wrong selectivity so the first plan is provably bad
    // — the demo knob for watching runtime cardinality guards fire.
    if args.force_misestimate {
        match args.scenario.as_str() {
            "exp1" => {
                let pred = exp1_lineitem_predicate(args.offset);
                db.feedback()
                    .inject_observation(&["lineitem"], &[("lineitem", &pred)], 0.9);
            }
            "exp2" => {
                let pred = exp2_part_predicate(args.window);
                db.feedback()
                    .inject_observation(&["part"], &[("part", &pred)], 0.5);
            }
            _ => {
                let pred = exp3_dim_predicate(args.level);
                for dim in ["dim1", "dim2", "dim3"] {
                    db.feedback()
                        .inject_observation(&[dim], &[(dim, &pred)], 1e-6);
                }
            }
        }
    }

    println!(
        "scenario: {}  (T = {}%, selection = {}, threads = {})",
        args.scenario,
        args.threshold_pct,
        args.selection.label(),
        args.threads
    );

    // In penalty mode, show how the integration reached its decision:
    // every scored candidate, the sensitivity partition, and the number
    // of quadrature nodes spent.
    if args.selection == PlanSelection::ExpectedPenalty {
        let planned = db.optimize(&query);
        if let Some(report) = &planned.penalty {
            println!(
                "\nexpected-penalty selection ({} candidate(s), {} quadrature node(s){}):",
                report.candidates.len(),
                report.nodes,
                if report.degenerate {
                    ", degenerate posterior"
                } else {
                    ""
                }
            );
            for (i, c) in report.candidates.iter().enumerate() {
                println!(
                    "  {}{}  E[cost]={:.3}ms  E[penalty]={:.3}ms",
                    if i == report.chosen { "*" } else { " " },
                    c.shape,
                    c.expected_cost,
                    c.expected_penalty
                );
            }
            if !report.sensitive.is_empty() || !report.pruned.is_empty() {
                println!(
                    "  sensitive: [{}]  pruned-to-median: [{}]",
                    report.sensitive.join(", "),
                    report.pruned.join(", ")
                );
            }
        }
    }
    let outcome = if args.adaptive {
        let adaptive = db.run_adaptive(&query);
        println!("\n{}", adaptive.render());
        adaptive.outcome
    } else if args.explain_analyze {
        let analyzed = db.explain_analyze(&query);
        println!("\nrobust plan (EXPLAIN ANALYZE):\n{}", analyzed.render());
        analyzed.outcome
    } else {
        let outcome = db.run(&query);
        println!("\nrobust plan:\n{}", outcome.plan.explain());
        outcome
    };
    print!("result: ");
    for (c, v) in outcome.columns.iter().zip(&outcome.rows[0]) {
        print!("{c}={v}  ");
    }
    println!(
        "\nsimulated time: {:.4}s  (optimizer estimate {:.4}s)",
        outcome.simulated_seconds, outcome.estimated_seconds
    );

    let (_, baseline_cost) = robust_qo::exec::execute_with(
        &baseline_plan.plan,
        &db.catalog(),
        &CostParams::default(),
        &ExecOptions::with_threads(args.threads),
    );
    println!(
        "\nhistogram baseline would pick: {}  ({:.4}s)",
        baseline_plan.shape(),
        baseline_cost.seconds(&CostParams::default())
    );

    // Demonstrate repeated traffic through ONE long-lived session over
    // the same engine (same plan cache, same feedback): the first run
    // above seeded the cache, so every repeat is a cache hit, and the
    // service counters show the admission lifecycle alongside the cache
    // counters.
    if args.repeat > 0 {
        let service =
            db.into_service(ServiceConfig::default().with_workers(args.threads.saturating_sub(1)));
        let session = service.session();
        let start = std::time::Instant::now();
        for _ in 0..args.repeat {
            std::hint::black_box(session.run(&query).expect("no cancellation source"));
        }
        let per_query = start.elapsed().as_nanos() as f64 / args.repeat as f64;
        println!(
            "\nre-ran {}× through one service session ({:.1}µs/query)",
            args.repeat,
            per_query / 1e3
        );
        println!("plan cache: {}", service.engine().cache_stats());
        println!("service:    {}", service.stats());
    } else {
        println!("plan cache: {}", db.cache_stats());
    }
}
